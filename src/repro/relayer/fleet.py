"""K-relayer fleets with pluggable coordination policies.

The paper's Fig. 9 measures two *uncoordinated* Hermes instances on one
channel: each relays every packet, one of the two submissions loses the
race, and roughly half the work is redundant.  ICS-18 makes relaying
permissionless and many-party but specifies no coordination, which the
paper calls out as the gap behind that waste.  This module models the
gap and two ways of closing it: a :class:`Fleet` deploys K relayer
instances per topology edge under one :class:`CoordinationPolicy`:

* ``none`` — the paper's baseline.  Every member relays everything;
  at K=2 the redundant-delivery ratio lands near 2x (Fig. 9).
* ``shard`` — static sequence-range partitioning.  Member ``i`` of
  ``K`` owns sequence blocks ``(sequence // SHARD_BLOCK) % K == i``;
  no two members ever build the same message.
* ``leader`` — deterministic leader election with failover.  The
  lowest-indexed healthy member relays everything; a per-fleet monitor
  process probes member health (their machine-local nodes' crash flags)
  and hands leadership to the next healthy member when the leader's
  host dies, so recovery latency under :mod:`repro.faults` crash
  schedules is measurable.

Every member is deterministic: the monitor's probe jitter comes from a
:class:`~repro.sim.rng.KeyedStream` derived from the experiment seed and
the edge index, so fleet runs are byte-identical under event tie-break
reversal (the schedcheck gate).  Policies ``none`` and ``shard`` spawn
no processes at all — a fleet with the default policy leaves the legacy
single-relayer event accounting untouched.

:class:`FleetConfig` is also the nested ``relayer`` section of the
experiment-config wire format (schema v5): the flat relayer knobs that
used to live on :class:`~repro.framework.config.ExperimentConfig`
(``rpc_retry_attempts``, ``resubscribe_on_disconnect``,
``coordinate_relayers``) collapsed into it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import SchemaError, WorkloadError
from repro.sim.core import SHUTDOWN, Environment, ProcessGroup

if TYPE_CHECKING:
    from repro.relayer.events import WorkBatch
    from repro.relayer.relayer import Relayer
    from repro.sim.rng import RngRegistry

#: Sequences are partitioned between shard-policy members in contiguous
#: blocks of this many, so one worker batch mostly stays on one member.
SHARD_BLOCK = 8

#: Leader-policy health-probe cadence (seconds) plus jitter bound.  The
#: probe reads the member nodes' crash flags out of band (no RPC), so a
#: short cadence costs two events per second per fleet.
MONITOR_PERIOD_SECONDS = 1.0
MONITOR_JITTER_SECONDS = 0.25


class CoordinationPolicy:
    """How K fleet members divide one edge's relay work.

    Policies are stateless singletons (the :class:`Fleet` carries the
    dynamic state such as the current leader), registered by name in
    :data:`POLICIES` via :func:`register_policy`.  A policy answers
    three questions for a member index: does it own a sequence, may it
    run packet clearing, and does the fleet need the health monitor.
    """

    #: Wire name of the policy (``FleetConfig.policy``).
    name: str = "abstract"

    def owns(self, fleet: "Fleet", index: int, sequence: int) -> bool:
        """Whether member ``index`` relays packets with ``sequence``."""
        raise NotImplementedError

    def may_clear(self, fleet: "Fleet", index: int) -> bool:
        """Whether member ``index`` may run packet-clear scans."""
        raise NotImplementedError

    def needs_monitor(self) -> bool:
        """Whether the fleet spawns the health-monitor process."""
        return False


class NonePolicy(CoordinationPolicy):
    """Paper baseline: no coordination, every member relays everything."""

    name = "none"

    def owns(self, fleet: "Fleet", index: int, sequence: int) -> bool:
        return True

    def may_clear(self, fleet: "Fleet", index: int) -> bool:
        return True


class ShardPolicy(CoordinationPolicy):
    """Static sequence-range partitioning (blocks of :data:`SHARD_BLOCK`)."""

    name = "shard"

    def owns(self, fleet: "Fleet", index: int, sequence: int) -> bool:
        if fleet.count <= 1:
            return True
        return (sequence // SHARD_BLOCK) % fleet.count == index

    def may_clear(self, fleet: "Fleet", index: int) -> bool:
        # Every member clears, but only its own sequence blocks: a gap
        # on a shared channel triggers K partitioned scans, not K full
        # duplicates (the supervisor gap-recovery fix).
        return True


class LeaderPolicy(CoordinationPolicy):
    """Lowest-indexed healthy member relays everything; others stand by."""

    name = "leader"

    def owns(self, fleet: "Fleet", index: int, sequence: int) -> bool:
        return index == fleet.leader_index

    def may_clear(self, fleet: "Fleet", index: int) -> bool:
        return index == fleet.leader_index

    def needs_monitor(self) -> bool:
        return True


#: Registered policies by wire name.
POLICIES: dict[str, CoordinationPolicy] = {}


def register_policy(policy: CoordinationPolicy) -> CoordinationPolicy:
    """Register a coordination policy under ``policy.name``."""
    POLICIES[policy.name] = policy
    return policy


register_policy(NonePolicy())
register_policy(ShardPolicy())
register_policy(LeaderPolicy())


@dataclass(frozen=True)
class FleetConfig:
    """The ``relayer`` section of the experiment config (wire schema v5).

    ``count=None`` inherits the experiment's ``num_relayers`` paper
    parameter; setting it overrides the fleet size explicitly.
    """

    #: Relayers per topology edge (None = inherit ``num_relayers``).
    count: Optional[int] = None
    #: Coordination policy name (see :data:`POLICIES`).
    policy: str = "none"
    #: Per-instance retry budget for transient RPC errors (0 = Hermes
    #: 1.0.0 behaviour: fail the query on the first timeout).
    rpc_retry_attempts: int = 0
    #: Reopen dropped WebSocket subscriptions (with height-gap detection
    #: feeding the clear machinery).
    resubscribe_on_disconnect: bool = True

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 0:
            raise WorkloadError("relayer count must be >= 0")
        if self.policy not in POLICIES:
            raise WorkloadError(
                f"unknown coordination policy {self.policy!r} "
                f"(known: {', '.join(sorted(POLICIES))})"
            )
        if self.rpc_retry_attempts < 0:
            raise WorkloadError("rpc_retry_attempts must be >= 0")

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Any) -> "FleetConfig":
        if not isinstance(data, dict):
            raise SchemaError(
                f"relayer section must be a dict, got {type(data).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SchemaError(
                f"unknown key(s) {', '.join(unknown)} in relayer section "
                f"(known keys: {', '.join(sorted(known))})"
            )
        return cls(**data)

    # ------------------------------------------------------------------

    def resolved(self, num_relayers: int) -> "FleetConfig":
        """This config with ``count`` made concrete."""
        if self.count is not None:
            return self
        return replace(self, count=num_relayers)


class FleetMember:
    """One relayer's seat in a fleet: the worker-side coordination hooks.

    The member is threaded into the relayer's direction workers, which
    consult it before relaying a batch (:meth:`filter_batch`) and before
    running packet clears (:meth:`may_clear` / :meth:`owns_sequence`).
    """

    __slots__ = ("fleet", "index", "relayer")

    def __init__(self, fleet: "Fleet", index: int):
        self.fleet = fleet
        self.index = index
        self.relayer: Optional["Relayer"] = None

    # -- worker hooks --------------------------------------------------

    def owns_sequence(self, sequence: int) -> bool:
        return self.fleet.policy.owns(self.fleet, self.index, sequence)

    def filter_batch(self, batch: "WorkBatch") -> "WorkBatch":
        """Keep only the events whose packet sequences this member owns."""
        fleet = self.fleet
        if fleet.count <= 1 or isinstance(fleet.policy, NonePolicy):
            return batch
        owned = [
            e for e in batch.events if self.owns_sequence(e.packet.sequence)
        ]
        if len(owned) == len(batch.events):
            return batch
        from repro.relayer.events import WorkBatch

        return WorkBatch(
            chain_id=batch.chain_id,
            height=batch.height,
            kind=batch.kind,
            routing_channel=batch.routing_channel,
            events=owned,
        )

    def may_clear(self) -> bool:
        return self.fleet.policy.may_clear(self.fleet, self.index)

    # -- monitor hooks -------------------------------------------------

    def probe_health(self) -> bool:
        """Out-of-band liveness check: are the member's local nodes up?"""
        relayer = self.relayer
        if relayer is None:
            return True
        return not (relayer.node_a.rpc.crashed or relayer.node_b.rpc.crashed)

    def on_became_leader(self) -> None:
        """Failover: sweep pending work the old leader left behind."""
        if self.relayer is not None:
            for worker in self.relayer.workers:
                worker.request_clear()


class Fleet:
    """K relayer instances sharing one topology edge under one policy."""

    def __init__(
        self,
        env: Environment,
        edge_index: int,
        config: FleetConfig,
        rng: "RngRegistry",
    ):
        if config.count is None:
            raise WorkloadError("Fleet requires a resolved FleetConfig")
        self.env = env
        self.edge_index = edge_index
        self.config = config
        self.count = config.count
        self.policy = POLICIES[config.policy]
        self.members = [FleetMember(self, i) for i in range(self.count)]
        #: Index of the current leader (leader policy; fixed at 0 otherwise).
        self.leader_index = 0
        self.healthy = [True] * self.count
        #: Leadership transitions: ``{"time", "from", "to"}`` per handoff.
        self.handoffs: list[dict[str, Any]] = []
        self.processes = ProcessGroup(env)
        self._started = False
        # Keyed (cursor-free) jitter: probe times are a pure function of
        # the tick index, so fleet runs replay identically whatever else
        # draws randomness — and only the leader policy creates the stream.
        self._jitter = (
            rng.keyed(f"fleet/edge{edge_index}/monitor")
            if self.policy.needs_monitor()
            else None
        )

    def attach(self, index: int, relayer: "Relayer") -> FleetMember:
        member = self.members[index]
        member.relayer = relayer
        return member

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the health monitor (leader policy with 2+ members only)."""
        if self._started:
            return
        self._started = True
        if self.policy.needs_monitor() and self.count > 1:
            self.processes.spawn(
                self._monitor_loop(),
                name=f"fleet/edge{self.edge_index}/monitor",
            )

    def stop(self) -> None:
        self._started = False
        self.processes.interrupt_all(SHUTDOWN)

    # ------------------------------------------------------------------

    def _monitor_loop(self):
        tick = 0
        while True:
            period = MONITOR_PERIOD_SECONDS + self._jitter.uniform(
                float(tick), 0.0, MONITOR_JITTER_SECONDS
            )
            yield self.env.timeout(period)
            tick += 1
            self._probe()

    def _probe(self) -> None:
        for member in self.members:
            self.healthy[member.index] = member.probe_health()
        alive = [i for i, ok in enumerate(self.healthy) if ok]
        if not alive:
            return  # nobody to hand off to; keep the seat until recovery
        new_leader = alive[0]
        if new_leader == self.leader_index:
            return
        old_leader = self.leader_index
        self.leader_index = new_leader
        self.handoffs.append(
            {"time": self.env.now, "from": old_leader, "to": new_leader}
        )
        leader = self.members[new_leader]
        if leader.relayer is not None:
            leader.relayer.log.info(
                "fleet_leader_handoff",
                edge=self.edge_index,
                from_index=old_leader,
                to_index=new_leader,
            )
        leader.on_became_leader()
