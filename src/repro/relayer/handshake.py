"""Channel bootstrap: client / connection / channel handshakes.

Drives the full ICS-02/03/04 handshake between two chains by submitting
real transactions through each chain's RPC and waiting for commits —
the job of ``hermes create channel``.  Identifier discovery and proof
fetching read chain state directly (the real CLI parses tx events and
queries ``abci_query``; the data is identical), which is an accepted
setup-time shortcut documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import RelayerError
from repro.ibc import keys
from repro.ibc.channel import ChannelOrder
from repro.ibc.client import SignedHeader
from repro.ibc.msgs import (
    MsgChannelOpenAck,
    MsgChannelOpenConfirm,
    MsgChannelOpenInit,
    MsgChannelOpenTry,
    MsgConnectionOpenAck,
    MsgConnectionOpenConfirm,
    MsgConnectionOpenInit,
    MsgConnectionOpenTry,
    MsgCreateClient,
    MsgUpdateClient,
)
from repro.relayer.endpoint import ChainEndpoint
from repro.relayer.worker import PathEnd, RelayPath
from repro.sim.core import Event


class HandshakeDriver:
    """Establishes a relay path between two chains."""

    def __init__(self, endpoint_a: ChainEndpoint, endpoint_b: ChainEndpoint):
        self.a = endpoint_a
        self.b = endpoint_b
        self.env = endpoint_a.env

    # ------------------------------------------------------------------

    def establish(
        self,
        ordering: ChannelOrder = ChannelOrder.UNORDERED,
        port_id: str = keys.TRANSFER_PORT,
        version: str = keys.ICS20_VERSION,
    ) -> Generator[Event, Any, RelayPath]:
        """Run the full handshake; returns the established path."""
        yield from self._wait_for_headers()

        client_a = yield from self._create_client(self.a, self.b)
        client_b = yield from self._create_client(self.b, self.a)

        conn_a, conn_b = yield from self._open_connection(client_a, client_b)
        chan_a, chan_b = yield from self._open_channel(
            client_a, client_b, conn_a, conn_b, ordering, port_id, version
        )
        return RelayPath(
            a=PathEnd(
                chain_id=self.a.chain_id,
                client_id=client_a,
                connection_id=conn_a,
                port_id=port_id,
                channel_id=chan_a,
            ),
            b=PathEnd(
                chain_id=self.b.chain_id,
                client_id=client_b,
                connection_id=conn_b,
                port_id=port_id,
                channel_id=chan_b,
            ),
        )

    # ------------------------------------------------------------------

    def open_extra_channel(
        self,
        path: RelayPath,
        ordering: ChannelOrder = ChannelOrder.UNORDERED,
        port_id: str = keys.TRANSFER_PORT,
        version: str = keys.ICS20_VERSION,
    ) -> Generator[Event, Any, RelayPath]:
        """Open another channel over an existing connection.

        Two blockchains can open multiple channels on a single connection
        (paper §II-B1); the paper's §IV-A discusses per-relayer channels as
        a scalability alternative (with the non-fungibility caveat).
        """
        chan_a, chan_b = yield from self._open_channel(
            path.a.client_id,
            path.b.client_id,
            path.a.connection_id,
            path.b.connection_id,
            ordering,
            port_id,
            version,
        )
        return RelayPath(
            a=PathEnd(
                chain_id=path.a.chain_id,
                client_id=path.a.client_id,
                connection_id=path.a.connection_id,
                port_id=port_id,
                channel_id=chan_a,
            ),
            b=PathEnd(
                chain_id=path.b.chain_id,
                client_id=path.b.client_id,
                connection_id=path.b.connection_id,
                port_id=port_id,
                channel_id=chan_b,
            ),
        )

    def _wait_for_headers(self):
        """Both chains need at least one committed block."""
        while (
            self.a.chain.engine.latest_signed_header is None
            or self.b.chain.engine.latest_signed_header is None
        ):
            yield self.env.timeout(1.0)

    def _submit_and_confirm(
        self, endpoint: ChainEndpoint, msgs: list[Any], step: str
    ):
        submitted = yield from endpoint.submit_msgs(msgs, label="handshake")
        confirmed = yield from endpoint.confirm_txs(submitted, "handshake")
        for entry in confirmed:
            if not entry.executed_ok:
                log = entry.confirmed.log if entry.confirmed else "not confirmed"
                raise RelayerError(
                    f"handshake step {step} failed on {endpoint.chain_id}: {log}"
                )

    @staticmethod
    def _header_of(endpoint: ChainEndpoint) -> SignedHeader:
        header = endpoint.chain.engine.latest_signed_header
        if header is None:
            raise RelayerError(f"no header available on {endpoint.chain_id}")
        return header

    def _create_client(self, host: ChainEndpoint, tracked: ChainEndpoint):
        """Create on ``host`` a light client tracking ``tracked``."""
        header = self._header_of(tracked)
        msg = MsgCreateClient(
            chain_id=tracked.chain_id,
            trusting_period=14 * 24 * 3600.0,
            initial_header=header,
            signer=host.factory.wallet.address,
        )
        yield from self._submit_and_confirm(host, [msg], "create_client")
        clients = [
            cid
            for cid, client in host.chain.app.ibc.clients.items()
            if client.state.chain_id == tracked.chain_id
        ]
        if not clients:
            raise RelayerError(f"client creation not visible on {host.chain_id}")
        return sorted(clients, key=lambda c: int(c.rsplit("-", 1)[1]))[-1]

    def _open_connection(self, client_a: str, client_b: str):
        ibc_a = self.a.chain.app.ibc
        ibc_b = self.b.chain.app.ibc

        # INIT on A.
        init = MsgConnectionOpenInit(
            client_id=client_a, counterparty_client_id=client_b
        )
        yield from self._submit_and_confirm(self.a, [init], "conn_open_init")
        conn_a = self._latest_connection(ibc_a, client_a)

        # TRY on B (proof that A recorded INIT).
        header_a = self._header_of(self.a)
        try_msg = MsgConnectionOpenTry(
            client_id=client_b,
            counterparty_client_id=client_a,
            counterparty_connection_id=conn_a,
            proof_init=ibc_a.prove_connection(conn_a),
            proof_height=header_a.height,
        )
        update_b = MsgUpdateClient(client_id=client_b, header=header_a)
        yield from self._submit_and_confirm(
            self.b, [update_b, try_msg], "conn_open_try"
        )
        conn_b = self._latest_connection(ibc_b, client_b)

        # ACK on A (proof that B recorded TRYOPEN).
        header_b = self._header_of(self.b)
        ack = MsgConnectionOpenAck(
            connection_id=conn_a,
            counterparty_connection_id=conn_b,
            proof_try=ibc_b.prove_connection(conn_b),
            proof_height=header_b.height,
        )
        update_a = MsgUpdateClient(client_id=client_a, header=header_b)
        yield from self._submit_and_confirm(
            self.a, [update_a, ack], "conn_open_ack"
        )

        # CONFIRM on B (proof that A is OPEN).
        header_a = self._header_of(self.a)
        confirm = MsgConnectionOpenConfirm(
            connection_id=conn_b,
            proof_ack=ibc_a.prove_connection(conn_a),
            proof_height=header_a.height,
        )
        update_b = MsgUpdateClient(client_id=client_b, header=header_a)
        yield from self._submit_and_confirm(
            self.b, [update_b, confirm], "conn_open_confirm"
        )
        return conn_a, conn_b

    def _open_channel(
        self,
        client_a: str,
        client_b: str,
        conn_a: str,
        conn_b: str,
        ordering: ChannelOrder,
        port_id: str,
        version: str,
    ):
        ibc_a = self.a.chain.app.ibc
        ibc_b = self.b.chain.app.ibc

        init = MsgChannelOpenInit(
            port_id=port_id,
            connection_id=conn_a,
            counterparty_port_id=port_id,
            ordering=ordering,
            version=version,
        )
        yield from self._submit_and_confirm(self.a, [init], "chan_open_init")
        chan_a = self._latest_channel(ibc_a, port_id, conn_a)

        header_a = self._header_of(self.a)
        try_msg = MsgChannelOpenTry(
            port_id=port_id,
            connection_id=conn_b,
            counterparty_port_id=port_id,
            counterparty_channel_id=chan_a,
            ordering=ordering,
            version=version,
            proof_init=ibc_a.prove_channel(port_id, chan_a),
            proof_height=header_a.height,
        )
        update_b = MsgUpdateClient(client_id=client_b, header=header_a)
        yield from self._submit_and_confirm(
            self.b, [update_b, try_msg], "chan_open_try"
        )
        chan_b = self._latest_channel(ibc_b, port_id, conn_b)

        header_b = self._header_of(self.b)
        ack = MsgChannelOpenAck(
            port_id=port_id,
            channel_id=chan_a,
            counterparty_channel_id=chan_b,
            proof_try=ibc_b.prove_channel(port_id, chan_b),
            proof_height=header_b.height,
        )
        update_a = MsgUpdateClient(client_id=client_a, header=header_b)
        yield from self._submit_and_confirm(
            self.a, [update_a, ack], "chan_open_ack"
        )

        header_a = self._header_of(self.a)
        confirm = MsgChannelOpenConfirm(
            port_id=port_id,
            channel_id=chan_b,
            proof_ack=ibc_a.prove_channel(port_id, chan_a),
            proof_height=header_a.height,
        )
        update_b = MsgUpdateClient(client_id=client_b, header=header_a)
        yield from self._submit_and_confirm(
            self.b, [update_b, confirm], "chan_open_confirm"
        )
        return chan_a, chan_b

    @staticmethod
    def _latest_connection(ibc, client_id: str) -> str:
        conns = [
            cid for cid, end in ibc.connections.items() if end.client_id == client_id
        ]
        if not conns:
            raise RelayerError("connection not found after handshake step")
        return sorted(conns, key=lambda c: int(c.rsplit("-", 1)[1]))[-1]

    @staticmethod
    def _latest_channel(ibc, port_id: str, connection_id: str) -> str:
        chans = [
            channel_id
            for (port, channel_id), end in ibc.channels.items()
            if port == port_id and end.connection_id == connection_id
        ]
        if not chans:
            raise RelayerError("channel not found after handshake step")
        return sorted(chans, key=lambda c: int(c.rsplit("-", 1)[1]))[-1]
