"""Hermes-style IBC relayer: supervisor, workers, chain endpoints, CLI."""

from repro.relayer.cli import TransferSubmission, WorkloadCli
from repro.relayer.config import RelayerConfig
from repro.relayer.endpoint import ChainEndpoint, SubmittedTx
from repro.relayer.events import PacketEvent, WorkBatch
from repro.relayer.fleet import (
    CoordinationPolicy,
    Fleet,
    FleetConfig,
    FleetMember,
    register_policy,
)
from repro.relayer.handshake import HandshakeDriver
from repro.relayer.logging import LogRecord, RelayerLog, render_journal
from repro.relayer.relayer import Relayer
from repro.relayer.supervisor import Supervisor
from repro.relayer.worker import DirectionWorker, PathEnd, RelayPath

__all__ = [
    "ChainEndpoint",
    "CoordinationPolicy",
    "DirectionWorker",
    "Fleet",
    "FleetConfig",
    "FleetMember",
    "HandshakeDriver",
    "LogRecord",
    "PacketEvent",
    "PathEnd",
    "Relayer",
    "RelayerConfig",
    "RelayerLog",
    "RelayPath",
    "SubmittedTx",
    "Supervisor",
    "TransferSubmission",
    "WorkBatch",
    "WorkloadCli",
    "register_policy",
    "render_journal",
]
