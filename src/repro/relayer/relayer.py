"""The relayer application: endpoints + supervisor + workers (Fig. 4)."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cosmos.accounts import Wallet
from repro.relayer.config import RelayerConfig
from repro.relayer.endpoint import ChainEndpoint
from repro.relayer.handshake import HandshakeDriver
from repro.relayer.logging import RelayerLog
from repro.relayer.supervisor import Supervisor
from repro.relayer.worker import DirectionWorker, RelayPath
from repro.sim.core import Environment, Event
from repro.tendermint.node import ChainNode
from repro.trace import NULL_TRACER


class Relayer:
    """One Hermes-style relayer instance on one machine.

    The relayer talks to machine-local full nodes of both chains (the
    paper's production-style deployment) and relays both directions of one
    channel.  Multiple instances may be created for the same path — by
    default they do not coordinate, reproducing the paper's multi-relayer
    redundancy; a :class:`repro.relayer.fleet.FleetMember` seat opts the
    instance into its fleet's coordination policy.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        host: str,
        node_a: ChainNode,
        node_b: ChainNode,
        wallet_a: Wallet,
        wallet_b: Wallet,
        config: Optional[RelayerConfig] = None,
        tracer=NULL_TRACER,
        member=None,
    ):
        self.env = env
        self.name = name
        self.host = host
        self.config = config or RelayerConfig(name=name)
        self.member = member
        if member is not None:
            member.relayer = self
        self.log = RelayerLog(env, name)
        self.tracer = tracer
        self.heights: dict[str, int] = {}
        self.endpoint_a = ChainEndpoint(
            env, node_a, wallet_a, host, self.config, self.log, tracer=tracer
        )
        self.endpoint_b = ChainEndpoint(
            env, node_b, wallet_b, host, self.config, self.log, tracer=tracer
        )
        self.node_a = node_a
        self.node_b = node_b
        self.supervisor = Supervisor(
            env, self.log, self.heights, host, config, tracer=tracer
        )
        self.workers: list[DirectionWorker] = []
        self.path: Optional[RelayPath] = None

    # ------------------------------------------------------------------

    def establish_path(
        self, ordering: Optional["ChannelOrder"] = None
    ) -> Generator[Event, Any, RelayPath]:
        """Create clients, connection and channel (``hermes create channel``)."""
        from repro.ibc.channel import ChannelOrder

        driver = HandshakeDriver(self.endpoint_a, self.endpoint_b)
        path = yield from driver.establish(
            ordering=ordering or ChannelOrder.UNORDERED
        )
        self.use_path(path)
        return path

    def use_path(self, path: RelayPath) -> None:
        """Adopt an already-established path (second relayer on a channel)."""
        self.path = path
        self.workers = []
        self.add_path(path)

    def add_path(self, path: RelayPath) -> None:
        """Relay an additional channel (multi-channel deployments)."""
        if self.path is None:
            self.path = path
        worker_ab = DirectionWorker(
            env=self.env,
            src=self.endpoint_a,
            dst=self.endpoint_b,
            src_end=path.a,
            dst_end=path.b,
            config=self.config,
            log=self.log,
            heights=self.heights,
            tracer=self.tracer,
            member=self.member,
        )
        worker_ba = DirectionWorker(
            env=self.env,
            src=self.endpoint_b,
            dst=self.endpoint_a,
            src_end=path.b,
            dst_end=path.a,
            config=self.config,
            log=self.log,
            heights=self.heights,
            tracer=self.tracer,
            member=self.member,
        )
        self.workers.extend([worker_ab, worker_ba])
        self.supervisor.route(worker_ab)
        self.supervisor.route(worker_ba)

    def start(self) -> None:
        """Subscribe to both chains and start the worker pipelines."""
        if self.path is None:
            raise RuntimeError("establish_path()/use_path() must run first")
        self.supervisor.attach(self.node_a)
        self.supervisor.attach(self.node_b)
        self.supervisor.start()
        for worker in self.workers:
            worker.start()

    def stop(self) -> None:
        """Teardown: close subscriptions and halt every worker pipeline."""
        self.supervisor.stop()
        for worker in self.workers:
            worker.stop()

    # ------------------------------------------------------------------
    # Introspection for the analysis pipeline
    # ------------------------------------------------------------------

    @property
    def worker_ab(self) -> DirectionWorker:
        return self.workers[0]

    @property
    def worker_ba(self) -> DirectionWorker:
        return self.workers[1]

    def redundant_error_count(self) -> int:
        return self.log.count("packet_messages_redundant")
