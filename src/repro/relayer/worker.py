"""Packet workers: the relayer's per-channel batch pipeline (Fig. 4).

One :class:`DirectionWorker` serves one direction of one channel (packets
src→dst plus their acknowledgements flowing back).  Work arrives as
per-block batches from the supervisor and moves through the stages the
paper's Fig. 12 names:

* **recv stage** — *transfer data pull* (one serial RPC query per source
  transaction, cost scaling with the height's event count), filter against
  already-received sequences, *build* ``MsgRecvPacket`` messages, *broadcast*
  to the destination, and confirm.
* **ack stage** — triggered by ``write_acknowledgement`` events from the
  destination: *recv data pull* (the single largest cost in the paper's
  breakdown), *build* ``MsgAcknowledgement``, *broadcast* to the source,
  confirm.
* **timeout stage** — packets whose timeout height passed on the
  destination before receipt are settled with ``MsgTimeout``.
* **clear loop** — when ``clear_interval > 0``, periodically re-scans the
  source chain's pending commitments to recover packets whose events were
  lost (e.g. to the WebSocket frame limit).

The two stages run as separate processes connected by queues, so batches
pipeline: while block ``h``'s acks are being pulled, block ``h+1``'s
packets can already be in their transfer pull — matching Hermes's worker
concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import calibration as cal
from repro.errors import RpcError
from repro.ibc.msgs import MsgAcknowledgement, MsgRecvPacket, MsgTimeout, MsgUpdateClient
from repro.ibc.packet import Packet
from repro.relayer.config import RelayerConfig
from repro.relayer.endpoint import ChainEndpoint, SubmittedTx
from repro.relayer.events import WorkBatch
from repro.relayer.logging import RelayerLog
from repro.sim.core import SHUTDOWN, Environment, ProcessGroup
from repro.sim.resources import Store
from repro.trace import NULL_TRACER, packet_key


@dataclass
class PathEnd:
    """One side of a relay path."""

    chain_id: str
    client_id: str  # the light client ON this chain tracking the other one
    connection_id: str
    port_id: str
    channel_id: str


@dataclass
class RelayPath:
    """A fully established channel between two chains."""

    a: PathEnd
    b: PathEnd


def _by_sequence(packet: Packet) -> int:
    return packet.sequence


class DirectionWorker:
    """Relays packets ``src → dst`` and their acks ``dst → src``."""

    def __init__(
        self,
        env: Environment,
        src: ChainEndpoint,
        dst: ChainEndpoint,
        src_end: PathEnd,
        dst_end: PathEnd,
        config: RelayerConfig,
        log: RelayerLog,
        heights: dict[str, int],
        tracer=NULL_TRACER,
        member=None,
    ):
        self.env = env
        self.src = src
        self.dst = dst
        self.src_end = src_end
        self.dst_end = dst_end
        self.config = config
        self.log = log
        self.tracer = tracer
        #: The relayer's seat in its fleet
        #: (:class:`repro.relayer.fleet.FleetMember`), consulted for batch
        #: ownership and clear permission; None = a standalone relayer.
        self.member = member
        self._track = (
            f"{log.relayer}/worker/{src_end.chain_id}->{dst_end.chain_id}"
        )
        #: Latest known height per chain (maintained by the supervisor).
        self.heights = heights

        self.recv_queue: Store = Store(env)
        self.ack_queue: Store = Store(env)
        #: Packets sent on src whose acks we have not yet relayed.
        self.pending: dict[int, Packet] = {}
        #: Sequences currently being relayed (avoid double work in clearing).
        self._in_flight: set[int] = set()
        self._started = False
        self._clear_pending = False
        #: Every process this worker spawns (stage loops, confirmations,
        #: one-shot clears), so teardown/faults can interrupt them.
        self.processes = ProcessGroup(env)

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        name = f"worker/{self.src_end.chain_id}->{self.dst_end.chain_id}"
        self.processes.spawn(self._recv_loop(), name=f"{name}/recv")
        self.processes.spawn(self._ack_loop(), name=f"{name}/ack")
        self.processes.spawn(self._timeout_loop(), name=f"{name}/timeout")
        if self.config.clear_interval > 0:
            self.processes.spawn(self._clear_loop(), name=f"{name}/clear")

    def stop(self) -> None:
        """Teardown: interrupt every stage loop and in-flight pull."""
        self._started = False
        self.processes.interrupt_all(SHUTDOWN)

    # ------------------------------------------------------------------
    # Stage 1: receive relaying (src events -> dst transactions)
    # ------------------------------------------------------------------

    def _recv_loop(self):
        while True:
            batch: WorkBatch = yield self.recv_queue.get()
            yield from self._relay_recv_batch(batch)

    def _owned(self, batch: WorkBatch) -> WorkBatch:
        """Keep only the work this relayer instance owns.

        Fleet coordination (sequence ownership via the member's policy)
        applies first; the legacy tx-hash partition of
        ``RelayerConfig.coordination_index/total`` composes on top for
        direct users of that knob.  With no member and a coordination
        total of 1 (Hermes behaviour) everything is owned.
        """
        if self.member is not None:
            batch = self.member.filter_batch(batch)
        total = self.config.coordination_total
        if total <= 1:
            return batch
        index = self.config.coordination_index
        owned_events = [
            e
            for e in batch.events
            if int.from_bytes(e.tx_hash[:4], "big") % total == index
        ]
        return WorkBatch(
            chain_id=batch.chain_id,
            height=batch.height,
            kind=batch.kind,
            routing_channel=batch.routing_channel,
            events=owned_events,
        )

    def _relay_recv_batch(self, batch: WorkBatch):
        batch = self._owned(batch)
        if not batch.events:
            return
        # Track for timeout handling regardless of relay success.
        for event in batch.events:
            self.pending.setdefault(event.packet.sequence, event.packet)

        packets = yield from self._pull_send_data(batch)
        if not packets:
            return
        sequences = [p.sequence for p in packets]
        self._in_flight.update(sequences)
        try:
            try:
                unreceived = yield from self.dst.query(
                    "unreceived_packets",
                    port=self.dst_end.port_id,
                    channel=self.dst_end.channel_id,
                    sequences=sequences,
                )
            except RpcError as exc:
                self.log.error("query_failed", stage="unreceived", reason=str(exc))
                return
            # Membership set only — never iterated: iteration order would
            # depend on the hash seed, not the simulation (repro.lint D003).
            wanted = set(unreceived)
            to_relay = sorted(
                (p for p in packets if p.sequence in wanted),
                key=lambda p: p.sequence,
            )
            skipped = len(packets) - len(to_relay)
            if skipped:
                # Another relayer won the race before we even built the msgs.
                self.log.info("skipped_already_received", count=skipped)
            # Drop packets already past their timeout at the destination —
            # those go through the timeout stage instead.
            dst_height = self.heights.get(self.dst_end.chain_id, 0)
            live = [
                p
                for p in to_relay
                if p.timeout_height.is_zero
                or dst_height < p.timeout_height.revision_height
            ]
            if not live:
                return
            yield from self._submit_recv_chunks(live)
        finally:
            self._in_flight.difference_update(sequences)

    def _submit_recv_chunks(self, packets: list[Packet]):
        """Build and submit recv transactions, one proof fetch per chunk.

        Each transaction's proofs and client-update header come from a
        single ``prove_packets`` response (Hermes's abci_query pattern), so
        they are mutually consistent even when the source chain advances
        between chunks.

        The *build* stage runs for the whole batch before any broadcast —
        Hermes assembles all of a batch's messages first and then submits
        the transactions back to back, which is why the paper's 5 000
        receives land in a single destination block.
        """
        build_started = self.env.now
        self.log.info("recv_build", count=len(packets))
        yield self.env.timeout(cal.RELAYER_BUILD_SECONDS_PER_MSG * len(packets))
        self.tracer.record_span(
            "recv_build", self._track, start=build_started, count=len(packets)
        )
        size = self.config.max_msgs_per_tx
        dst = self.dst
        signer = dst.factory.wallet.address
        for start in range(0, len(packets), size):
            chunk = packets[start : start + size]
            try:
                proven = yield from self.src.query(
                    "prove_packets",
                    port=self.src_end.port_id,
                    channel=self.src_end.channel_id,
                    sequences=[p.sequence for p in chunk],
                    kind="commitment",
                )
            except RpcError as exc:
                self.log.error("query_failed", stage="prove_recv", reason=str(exc))
                continue
            header = proven["signed_header"]
            proofs = proven["proofs"]
            if header is None:
                continue
            msgs = [
                MsgRecvPacket(
                    packet=packet,
                    proof_commitment=proofs[packet.sequence],
                    proof_height=proven["proof_height"],
                    signer=signer,
                )
                for packet in chunk
                if packet.sequence in proofs
            ]
            if not msgs:
                continue
            update = MsgUpdateClient(
                client_id=self.dst_end.client_id,
                header=header,
                signer=signer,
            )
            submitted = yield from dst.submit_msgs(
                msgs,
                label="recv",
                prepend_msg=update,
                packet_src_chain=self.src.chain_id,
            )
            self.processes.spawn(
                self._confirm(dst, submitted, "recv"), name="confirm/recv"
            )

    def _pull_batch(self, endpoint: ChainEndpoint, batch: WorkBatch, step: str):
        """Per-tx packet-data pulls, ``pull_concurrency`` at a time.

        With the default concurrency of 1 this is the paper's serial query
        loop; the parallel-RPC ablation raises it together with the server's
        worker count.
        """
        responses: list[tuple[bytes, Any]] = []
        concurrency = max(1, self.config.pull_concurrency)
        tx_hashes = batch.tx_hashes

        def one(tx_hash):
            started = self.env.now
            try:
                response = yield from endpoint.query(
                    "pull_packet_data",
                    height=batch.height,
                    tx_hash=tx_hash,
                    kind=batch.kind,
                )
            except RpcError as exc:
                self.log.error("query_failed", stage=step, reason=str(exc))
                return None, started
            if self.tracer.enabled:
                # Stamped here (not after the concurrency barrier) so the
                # span covers exactly this pull's wall time.
                self.tracer.record_span(
                    step,
                    self._track,
                    start=started,
                    chain=endpoint.chain_id,
                    height=batch.height,
                    tx_hash=tx_hash,
                )
                for entry in response["entries"]:
                    attrs = entry["attrs"]
                    channel = attrs.get("packet_src_channel")
                    sequence = attrs.get("packet_sequence")
                    src_chain = attrs.get("packet_src_chain")
                    if channel is None or sequence is None or src_chain is None:
                        continue
                    self.tracer.event(
                        f"{step}_done",
                        self._track,
                        key=packet_key(src_chain, channel, sequence),
                        height=batch.height,
                        tx_hash=tx_hash,
                    )
            return response, started

        env = self.env
        for start in range(0, len(tx_hashes), concurrency):
            group = tx_hashes[start : start + concurrency]
            # Spawned through the worker's group (not bare env.process) so
            # teardown can interrupt pulls still in flight.
            procs = [
                self.processes.spawn(one(tx_hash), name=f"pull/{step}")
                for tx_hash in group
            ]
            yield env.all_of(procs)
            for tx_hash, proc in zip(group, procs):
                response, started = proc.value
                if response is None:
                    continue
                count = sum(
                    1 for e in response["entries"] if e["attrs"].get("packet_data")
                )
                self.log.info(
                    step,
                    height=batch.height,
                    count=count,
                    duration=env.now - started,
                )
                responses.append((tx_hash, response))
        return responses

    def _pull_send_data(self, batch: WorkBatch):
        """The *transfer data pull* (Fig. 12 step 4)."""
        packets: list[Packet] = []
        responses = yield from self._pull_batch(
            self.src, batch, "transfer_data_pull"
        )
        for tx_hash, response in responses:
            expected = {e.packet.sequence for e in batch.events_for_tx(tx_hash)}
            for entry in response["entries"]:
                attrs = entry["attrs"]
                if attrs["packet_sequence"] not in expected:
                    continue
                packets.append(self._packet_from_attrs(attrs))
        return packets

    # ------------------------------------------------------------------
    # Stage 2: acknowledgement relaying (dst events -> src transactions)
    # ------------------------------------------------------------------

    def _ack_loop(self):
        while True:
            batch: WorkBatch = yield self.ack_queue.get()
            yield from self._relay_ack_batch(batch)

    def _relay_ack_batch(self, batch: WorkBatch):
        batch = self._owned(batch)
        if not batch.events:
            return
        packets: list[Packet] = []
        acks: dict[int, Any] = {}
        responses = yield from self._pull_batch(self.dst, batch, "recv_data_pull")
        for _tx_hash, response in responses:
            for entry in response["entries"]:
                attrs = entry["attrs"]
                if entry.get("ack") is None:
                    continue
                packet = self._packet_from_attrs(attrs)
                # Only handle packets belonging to our channel direction.
                if (
                    packet.source_port != self.src_end.port_id
                    or packet.source_channel != self.src_end.channel_id
                ):
                    continue
                packets.append(packet)
                acks[packet.sequence] = entry["ack"]
        if not packets:
            return
        sequences = [p.sequence for p in packets]
        try:
            unacked = yield from self.src.query(
                "unreceived_acks",
                port=self.src_end.port_id,
                channel=self.src_end.channel_id,
                sequences=sequences,
            )
        except RpcError as exc:
            self.log.error("query_failed", stage="unreceived_acks", reason=str(exc))
            return
        # Membership-only set; the submitted order is made canonical by
        # sorting on sequence so ack transactions replay identically.
        wanted = set(unacked)
        to_relay = sorted(
            (p for p in packets if p.sequence in wanted),
            key=_by_sequence,
        )
        if not to_relay:
            return
        yield from self._submit_ack_chunks(to_relay, acks)

    def _submit_ack_chunks(self, packets: list[Packet], acks: dict[int, Any]):
        """Build and submit ack transactions with per-chunk proof fetches.

        As with receives, the build stage covers the whole batch before the
        back-to-back broadcasts.
        """
        build_started = self.env.now
        self.log.info("ack_build", count=len(packets))
        yield self.env.timeout(cal.RELAYER_BUILD_SECONDS_PER_MSG * len(packets))
        self.tracer.record_span(
            "ack_build", self._track, start=build_started, count=len(packets)
        )
        size = self.config.max_msgs_per_tx
        src = self.src
        signer = src.factory.wallet.address
        for start in range(0, len(packets), size):
            chunk = packets[start : start + size]
            try:
                proven = yield from self.dst.query(
                    "prove_packets",
                    port=self.dst_end.port_id,
                    channel=self.dst_end.channel_id,
                    sequences=[p.sequence for p in chunk],
                    kind="ack",
                )
            except RpcError as exc:
                self.log.error("query_failed", stage="prove_ack", reason=str(exc))
                continue
            header = proven["signed_header"]
            proofs = proven["proofs"]
            if header is None:
                continue
            msgs = [
                MsgAcknowledgement(
                    packet=packet,
                    acknowledgement=acks[packet.sequence],
                    proof_acked=proofs[packet.sequence],
                    proof_height=proven["proof_height"],
                    signer=signer,
                )
                for packet in chunk
                if packet.sequence in proofs
            ]
            if not msgs:
                continue
            update = MsgUpdateClient(
                client_id=self.src_end.client_id,
                header=header,
                signer=signer,
            )
            submitted = yield from src.submit_msgs(
                msgs, label="ack", prepend_msg=update
            )
            for msg in msgs:
                self.pending.pop(msg.packet.sequence, None)
            self.processes.spawn(
                self._confirm(src, submitted, "ack"), name="confirm/ack"
            )

    # ------------------------------------------------------------------
    # Timeout relaying
    # ------------------------------------------------------------------

    def _timeout_loop(self):
        while True:
            yield self.env.timeout(self.config.confirm_poll_seconds * 2)
            if not self.pending:
                continue
            dst_height = self.heights.get(self.dst_end.chain_id, 0)
            # Filter on the unsorted dict first — most polls expire nothing,
            # so sorting the full pending set every tick is wasted work.
            expired = [
                p
                for p in self.pending.values()
                if not p.timeout_height.is_zero
                and p.timeout_height.revision_height <= dst_height
                and p.sequence not in self._in_flight
            ]
            if not expired:
                continue
            # Sorted by sequence: timeout submission order must not depend
            # on pending-dict insertion history.
            expired.sort(key=_by_sequence)
            yield from self._relay_timeouts(expired)

    def _relay_timeouts(self, expired: list[Packet]):
        # Group messages by the header they were proven against so each
        # transaction's client update matches its proofs.
        src = self.src
        signer = src.factory.wallet.address
        by_header: dict[int, tuple[Any, list[MsgTimeout]]] = {}
        for packet in expired:
            try:
                response = yield from self.dst.query(
                    "prove_unreceived",
                    port=self.dst_end.port_id,
                    channel=self.dst_end.channel_id,
                    sequence=packet.sequence,
                )
            except RpcError as exc:
                self.log.error("query_failed", stage="timeout_proof", reason=str(exc))
                continue
            if response["received"]:
                # It made it after all; the ack path will settle it.
                continue
            header = response["signed_header"]
            if header is None:
                continue
            msg = MsgTimeout(
                packet=packet,
                proof_unreceived=response["proof"],
                proof_height=header.height,
                signer=signer,
            )
            by_header.setdefault(header.height, (header, []))[1].append(msg)
        for _height, (header, msgs) in sorted(by_header.items()):
            update = MsgUpdateClient(
                client_id=self.src_end.client_id,
                header=header,
                signer=signer,
            )
            self.log.info("timeout_build", count=len(msgs))
            submitted = yield from src.submit_msgs(
                msgs,
                label="timeout",
                build_seconds_per_msg=cal.RELAYER_BUILD_SECONDS_PER_MSG,
                prepend_msg=update,
            )
            for msg in msgs:
                self.pending.pop(msg.packet.sequence, None)
            self.processes.spawn(
                self._confirm(src, submitted, "timeout"), name="confirm/timeout"
            )

    # ------------------------------------------------------------------
    # Packet clearing
    # ------------------------------------------------------------------

    def _clear_loop(self):
        interval = self.config.clear_interval * cal.MIN_BLOCK_INTERVAL
        while True:
            yield self.env.timeout(interval)
            yield from self.clear_once()

    def request_clear(self) -> None:
        """Run one out-of-band clear pass now (supervisor gap recovery).

        Used when a resubscribed WebSocket stream reveals a height gap:
        events committed during the outage never arrived, so the pending
        commitments are re-scanned immediately instead of waiting for the
        next ``clear_interval`` tick.  Concurrent requests coalesce, and
        a fleet member whose policy forbids clearing (a leader-policy
        standby) declines — one gap on a shared channel must not fan out
        into K duplicate clear scans.
        """
        if self.member is not None and not self.member.may_clear():
            return
        if self._clear_pending:
            return
        self._clear_pending = True

        def one_shot():
            try:
                yield from self.clear_once()
            finally:
                self._clear_pending = False

        name = f"clear-gap/{self.src_end.chain_id}->{self.dst_end.chain_id}"
        self.processes.spawn(one_shot(), name=name)

    def clear_once(self):
        """Re-scan pending commitments on src and re-relay missing packets.

        Only the sequences this instance owns are cleared: under a
        sharded fleet each member re-relays its own partition, and a
        leader-policy standby clears nothing.
        """
        member = self.member
        if member is not None and not member.may_clear():
            return
        try:
            sequences = yield from self.src.query(
                "commitments",
                port=self.src_end.port_id,
                channel=self.src_end.channel_id,
            )
        except RpcError as exc:
            self.log.error("query_failed", stage="clear_scan", reason=str(exc))
            return
        stale = sorted(
            s
            for s in sequences
            if s not in self._in_flight
            and (member is None or member.owns_sequence(s))
        )
        if not stale:
            return
        self.log.info("packet_clear", count=len(stale))
        try:
            response = yield from self.src.query(
                "packets_by_sequence",
                port=self.src_end.port_id,
                channel=self.src_end.channel_id,
                sequences=stale,
            )
        except RpcError as exc:
            self.log.error("query_failed", stage="clear_fetch", reason=str(exc))
            return
        header = response["signed_header"]
        if header is None:
            return
        proof_height = response["proof_height"]
        entries = response["entries"]
        if not entries:
            return
        packets = [self._packet_from_attrs(e["attrs"]) for e in entries]
        for packet in packets:
            self.pending.setdefault(packet.sequence, packet)
        try:
            unreceived = yield from self.dst.query(
                "unreceived_packets",
                port=self.dst_end.port_id,
                channel=self.dst_end.channel_id,
                sequences=[p.sequence for p in packets],
            )
        except RpcError as exc:
            self.log.error("query_failed", stage="clear_unreceived", reason=str(exc))
            return
        wanted = set(unreceived)
        msgs = []
        for packet, entry in zip(packets, entries):
            if packet.sequence in wanted and entry["proof"] is not None:
                msgs.append(
                    MsgRecvPacket(
                        packet=packet,
                        proof_commitment=entry["proof"],
                        proof_height=proof_height,
                        signer=self.dst.factory.wallet.address,
                    )
                )
        if msgs:
            update = MsgUpdateClient(
                client_id=self.dst_end.client_id,
                header=header,
                signer=self.dst.factory.wallet.address,
            )
            submitted = yield from self.dst.submit_msgs(
                msgs,
                label="recv",
                build_seconds_per_msg=cal.RELAYER_BUILD_SECONDS_PER_MSG,
                prepend_msg=update,
                packet_src_chain=self.src.chain_id,
            )
            self.processes.spawn(
                self._confirm(self.dst, submitted, "recv"), name="confirm/clear"
            )
        # Ack-side clearing: packets already received on dst whose acks were
        # never relayed back (e.g. the ack events were lost to a WebSocket
        # failure).  Hermes's packet clearing covers this leg too.
        received_pending = [p for p in packets if p.sequence not in wanted]
        if received_pending:
            try:
                response = yield from self.dst.query(
                    "acks_by_sequence",
                    port=self.dst_end.port_id,
                    channel=self.dst_end.channel_id,
                    sequences=[p.sequence for p in received_pending],
                )
            except RpcError as exc:
                self.log.error(
                    "query_failed", stage="clear_acks", reason=str(exc)
                )
                return
            acks = response["acks"]
            stale_acked = [p for p in received_pending if p.sequence in acks]
            if stale_acked:
                yield from self._submit_ack_chunks(stale_acked, acks)

    # ------------------------------------------------------------------

    def _confirm(self, endpoint: ChainEndpoint, submitted: list[SubmittedTx], label: str):
        confirmed = yield from endpoint.confirm_txs(submitted, label)
        for entry in confirmed:
            if entry.confirmed is not None and entry.confirmed.code != 0:
                if "redundant" in entry.confirmed.log:
                    self.log.error(
                        "packet_messages_redundant",
                        chain=endpoint.chain_id,
                        tx_hash=entry.tx.hash,
                        log=entry.confirmed.log,
                    )
                else:
                    self.log.error(
                        "tx_execution_failed",
                        chain=endpoint.chain_id,
                        code=entry.confirmed.code,
                        log=entry.confirmed.log,
                    )

    @staticmethod
    def _packet_from_attrs(attrs: dict[str, Any]) -> Packet:
        return Packet(
            sequence=attrs["packet_sequence"],
            source_port=attrs["packet_src_port"],
            source_channel=attrs["packet_src_channel"],
            destination_port=attrs["packet_dst_port"],
            destination_channel=attrs["packet_dst_channel"],
            data=attrs["packet_data"],
            timeout_height=attrs["packet_timeout_height"],
            timeout_timestamp=float(attrs["packet_timeout_timestamp"]),
        )
