"""The Hermes CLI as a workload connector (``hermes tx ft-transfer``).

The paper's Benchmark module "binds the workload submission to the Hermes
Relayer CLI": user accounts submit transactions of up to 100 ``MsgTransfer``
messages through the machine-local full node, then poll for confirmation
before the next submission (the account-sequence constraint of §V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro import calibration as cal
from repro.cosmos.accounts import Wallet
from repro.cosmos.gas import GasSchedule
from repro.cosmos.tx import Tx, TxFactory
from repro.errors import RpcError, RpcTimeoutError
from repro.ibc.msgs import MsgTransfer
from repro.ibc.packet import Height
from repro.relayer.logging import RelayerLog
from repro.sim.core import Environment, Event
from repro.tendermint.node import BroadcastResult, ChainNode, TxLookupResult
from repro.tendermint.rpc import RpcClient


@dataclass
class TransferSubmission:
    """Outcome of one CLI ft-transfer invocation (one transaction)."""

    tx: Tx
    transfer_count: int
    broadcast_time: float
    broadcast: Optional[BroadcastResult] = None
    confirmed: Optional[TxLookupResult] = None
    confirm_time: Optional[float] = None

    @property
    def accepted(self) -> bool:
        return self.broadcast is not None and self.broadcast.ok

    @property
    def committed_ok(self) -> bool:
        return (
            self.confirmed is not None
            and self.confirmed.found
            and self.confirmed.code == 0
        )


class WorkloadCli:
    """Submits cross-chain transfers on behalf of one user account."""

    __slots__ = (
        "env",
        "node",
        "log",
        "source_channel",
        "receiver",
        "denom",
        "confirm_poll_seconds",
        "confirm_timeout_seconds",
        "client",
        "factory",
        "_gas",
        "wallet",
    )

    def __init__(
        self,
        env: Environment,
        node: ChainNode,
        wallet: Wallet,
        client_host: str,
        log: RelayerLog,
        source_channel: str,
        receiver: str,
        denom: str = "uatom",
        rpc_timeout: Optional[float] = None,
        confirm_poll_seconds: float = cal.CLI_CONFIRM_POLL_SECONDS,
        confirm_timeout_seconds: float = 300.0,
    ):
        self.env = env
        self.node = node
        self.log = log
        self.source_channel = source_channel
        self.receiver = receiver
        self.denom = denom
        self.confirm_poll_seconds = confirm_poll_seconds
        self.confirm_timeout_seconds = confirm_timeout_seconds
        self.client = RpcClient(
            env,
            node.chain.network,
            client_host,
            node.rpc,
            timeout=rpc_timeout,
            client_id=f"cli/{wallet.name}",
        )
        self.factory = TxFactory(wallet)
        self._gas = GasSchedule(node.chain.cal)
        self.wallet = wallet

    # ------------------------------------------------------------------

    def build_transfer_msgs(
        self, count: int, amount: int, timeout_blocks: int, current_dst_height: int
    ) -> list[MsgTransfer]:
        timeout = Height(0, current_dst_height + timeout_blocks)
        return [
            MsgTransfer(
                source_port="transfer",
                source_channel=self.source_channel,
                denom=self.denom,
                amount=amount,
                sender=self.wallet.address,
                receiver=self.receiver,
                timeout_height=timeout,
                signer=self.wallet.address,
            )
            for _ in range(count)
        ]

    def ft_transfer(
        self,
        count: int,
        amount: int = 1,
        timeout_blocks: int = cal.DEFAULT_TIMEOUT_BLOCKS,
        dst_height_hint: Optional[int] = None,
        gas_factor: float = 1.3,
    ) -> Generator[Event, Any, TransferSubmission]:
        """Submit one transaction with ``count`` transfer messages.

        ``gas_factor`` scales the honest gas estimate — the default is the
        CLI's 1.3x headroom; the gas-griefing adversary passes a factor
        below 1 to submit transactions that admit but cannot execute.
        """
        dst_height = (
            dst_height_hint
            if dst_height_hint is not None
            else self.node.chain.engine.height
        )
        msgs = self.build_transfer_msgs(count, amount, timeout_blocks, dst_height)
        # CLI-side preparation (encode + sign).
        yield self.env.timeout(cal.CLI_PREPARE_SECONDS_PER_TX)
        gas = int(self._gas.estimate_tx_gas([m.kind for m in msgs]) * gas_factor)
        tx = self.factory.build(msgs, gas_limit=gas)
        submission = TransferSubmission(
            tx=tx, transfer_count=count, broadcast_time=self.env.now
        )
        self.log.info(
            "transfer_broadcast",
            chain=self.node.chain.chain_id,
            tx_hash=tx.hash,
            count=count,
        )
        try:
            result = yield from self.client.call("broadcast_tx_sync", tx=tx)
        except RpcError as exc:
            self.log.error("transfer_broadcast_failed", reason=str(exc))
            # The tx never reached the node; roll the local sequence back so
            # the next attempt reuses it.
            self.factory.resync_sequence(tx.sequence)
            return submission
        submission.broadcast = result
        if not result.ok:
            self.log.error(
                "transfer_broadcast_rejected", code=result.code, log=result.log
            )
            if "sequence" in result.log:
                # Stale local sequence: re-sync from committed chain state.
                try:
                    info = yield from self.client.call(
                        "account", address=self.wallet.address
                    )
                    self.factory.resync_sequence(info["sequence"])
                except RpcError as exc:
                    self.log.error(
                        "sequence_resync_failed", reason=str(exc)
                    )
        return submission

    def wait_confirmation(
        self, submission: TransferSubmission
    ) -> Generator[Event, Any, bool]:
        """Poll ``/tx`` until the submission confirms; True on success."""
        if not submission.accepted:
            return False
        deadline = self.env.now + self.confirm_timeout_seconds
        while self.env.now < deadline:
            try:
                lookup = yield from self.client.call("tx", tx_hash=submission.tx.hash)
            except RpcTimeoutError:
                self.log.error(
                    "failed_tx_no_confirmation", tx_hash=submission.tx.hash
                )
                yield self.env.timeout(self.confirm_poll_seconds)
                continue
            except RpcError:
                yield self.env.timeout(self.confirm_poll_seconds)
                continue
            if lookup.found:
                submission.confirmed = lookup
                submission.confirm_time = self.env.now
                self.log.info(
                    "transfer_confirmation",
                    tx_hash=submission.tx.hash,
                    code=lookup.code,
                    height=lookup.height,
                    count=submission.transfer_count,
                )
                if lookup.code != 0:
                    # Committed but failed in execution (out of gas,
                    # failed ante) — distinct from the no-confirmation
                    # timeout bucket below, which never saw the tx land.
                    self.log.error(
                        "failed_tx_execution",
                        tx_hash=submission.tx.hash,
                        code=lookup.code,
                    )
                return lookup.code == 0
            yield self.env.timeout(self.confirm_poll_seconds)
        self.log.error("failed_tx_no_confirmation", tx_hash=submission.tx.hash)
        return False
