"""The relayer's Chain Endpoint (Fig. 4): transaction submission per chain.

Responsibilities, mirroring Hermes:

* sign transactions with the relayer's key, tracking the account sequence
  *optimistically* (incremented locally per signed tx) so several
  transactions can be queued into one block;
* on ``account sequence mismatch`` errors, re-sync the sequence from the
  chain (an RPC query that sees only committed state — the root of the
  paper's mismatch cascades under load) and retry;
* poll ``/tx`` for confirmation of broadcast transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro import calibration as cal
from repro.cosmos.accounts import Wallet
from repro.cosmos.gas import GasSchedule
from repro.cosmos.tx import Tx, TxFactory, chunk_msgs
from repro.errors import (
    NodeUnavailableError,
    RpcError,
    RpcOverloadedError,
    RpcTimeoutError,
)
from repro.relayer.config import RelayerConfig
from repro.relayer.logging import RelayerLog
from repro.sim.core import Environment, Event
from repro.tendermint.node import BroadcastResult, ChainNode, TxLookupResult
from repro.tendermint.rpc import RpcClient
from repro.trace import NULL_TRACER, packet_key

#: ABCI code for account sequence mismatch (see errors.SequenceMismatchError).
SEQUENCE_MISMATCH_CODE = 32

#: RPC failures worth retrying: the request may simply have hit a busy or
#: briefly-unavailable node.  Application-level RpcErrors are not retried.
TRANSIENT_RPC_ERRORS = (RpcTimeoutError, RpcOverloadedError, NodeUnavailableError)


@dataclass
class SubmittedTx:
    """A transaction the endpoint pushed toward the chain."""

    tx: Tx
    broadcast: Optional[BroadcastResult] = None
    broadcast_time: float = 0.0
    confirmed: Optional[TxLookupResult] = None
    confirm_time: Optional[float] = None
    #: Packet messages in the tx (excludes the prepended client update).
    payload_msgs: int = 0
    #: (source_chain, source_channel, sequence) per packet message, in
    #: chunk order, so confirmations can be traced back to packet
    #: identities.
    packet_keys: tuple[tuple[str, str, int], ...] = ()

    @property
    def accepted(self) -> bool:
        return self.broadcast is not None and self.broadcast.ok

    @property
    def executed_ok(self) -> bool:
        return (
            self.confirmed is not None
            and self.confirmed.found
            and self.confirmed.code == 0
        )


class ChainEndpoint:
    """One relayer's interface to one chain, via a machine-local full node."""

    def __init__(
        self,
        env: Environment,
        node: ChainNode,
        wallet: Wallet,
        client_host: str,
        config: RelayerConfig,
        log: RelayerLog,
        tracer=NULL_TRACER,
    ):
        self.env = env
        self.node = node
        self.chain = node.chain
        self.config = config
        self.log = log
        self.tracer = tracer
        self._track = f"{log.relayer}/endpoint/{node.chain.chain_id}"
        self.client = RpcClient(
            env,
            node.chain.network,
            client_host,
            node.rpc,
            timeout=config.rpc_timeout_seconds,
            # Stable id (relayer names are unique per testbed): the default
            # falls back to a process-global counter, which is replay-safe
            # but drifts across runs in one process.
            client_id=f"{config.name}/{node.chain.chain_id}",
        )
        # +1: each packet transaction carries a prepended MsgUpdateClient on
        # top of the (paper-reported) 100 packet messages.
        self.factory = TxFactory(
            wallet,
            max_msgs_per_tx=config.max_msgs_per_tx + 1,
            gas_price=config.gas_price,
        )
        self._gas = GasSchedule(node.chain.cal)
        #: Accounting for analysis.
        self.broadcast_failures = 0
        self.sequence_resyncs = 0
        self.rpc_retries = 0

    @property
    def chain_id(self) -> str:
        return self.chain.chain_id

    # ------------------------------------------------------------------
    # Queries (thin wrappers over the RPC client)
    # ------------------------------------------------------------------

    def query(self, method: str, **params: Any) -> Generator[Event, Any, Any]:
        """RPC query with capped exponential backoff on transient failures.

        With ``rpc_retry_attempts = 0`` (the default, matching Hermes
        1.0.0's query behaviour) this is a plain call.  Retries apply only
        to queries — broadcasts are never auto-retried, since the tx may
        have been accepted even when the response was lost.
        """
        budget = self.config.rpc_retry_attempts
        backoff = self.config.rpc_retry_base_seconds
        attempt = 0
        while True:
            try:
                return (yield from self.client.call(method, **params))
            except TRANSIENT_RPC_ERRORS as exc:
                if attempt >= budget:
                    if budget > 0:
                        self.log.error(
                            "rpc_retry_exhausted",
                            chain=self.chain_id,
                            method=method,
                            attempts=attempt + 1,
                            reason=str(exc),
                        )
                    raise
                attempt += 1
                self.rpc_retries += 1
                self.log.info(
                    "rpc_retry",
                    chain=self.chain_id,
                    method=method,
                    attempt=attempt,
                    backoff=backoff,
                )
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2.0, self.config.rpc_retry_max_seconds)

    def sync_sequence(self) -> Generator[Event, Any, int]:
        """Re-sync the local signing sequence from committed chain state."""
        info = yield from self.client.call(
            "account", address=self.factory.wallet.address
        )
        self.sequence_resyncs += 1
        self.factory.resync_sequence(info["sequence"])
        return info["sequence"]

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def submit_msgs(
        self,
        msgs: list[Any],
        label: str,
        build_seconds_per_msg: float = 0.0,
        prepend_msg: Optional[Any] = None,
        packet_src_chain: Optional[str] = None,
    ) -> Generator[Event, Any, list[SubmittedTx]]:
        """Chunk, sign and broadcast messages; returns per-tx outcomes.

        ``build_seconds_per_msg`` charges per-message construction CPU time
        (proof encoding etc.) before each chunk is signed.  ``prepend_msg``
        (a ``MsgUpdateClient`` in practice) is prepended to every chunk, the
        way Hermes precedes each packet transaction with a client update.
        ``packet_src_chain`` names the chain the chunk's packets originated
        on, for trace keys; it defaults to this endpoint's own chain, which
        is correct for ack/timeout submissions (the packet's source chain is
        the one being submitted to) but not for recv submissions.
        """
        src_chain = packet_src_chain if packet_src_chain is not None else self.chain_id
        submitted: list[SubmittedTx] = []
        for chunk in chunk_msgs(msgs, self.config.max_msgs_per_tx):
            started = self.env.now
            if build_seconds_per_msg > 0:
                yield self.env.timeout(build_seconds_per_msg * len(chunk))
            yield self.env.timeout(cal.RELAYER_SIGN_SECONDS_PER_TX)
            payload = [prepend_msg] + chunk if prepend_msg is not None else chunk
            entry = yield from self._sign_and_broadcast(
                payload, label, payload_msgs=len(chunk)
            )
            entry.packet_keys = tuple(
                packet_key(src_chain, m.packet.source_channel, m.packet.sequence)
                for m in chunk
                if hasattr(m, "packet")
            )
            submitted.append(entry)
            if self.tracer.enabled:
                # Sign + broadcast for one chunk (Fig. 12's submit leg).
                self.tracer.record_span(
                    f"{label}_submit",
                    self._track,
                    start=started,
                    chain=self.chain_id,
                    tx_hash=entry.tx.hash,
                    count=entry.payload_msgs,
                    accepted=entry.accepted,
                )
        return submitted

    def _sign_and_broadcast(
        self,
        chunk: list[Any],
        label: str,
        retried: bool = False,
        payload_msgs: Optional[int] = None,
    ) -> Generator[Event, Any, SubmittedTx]:
        kinds = [getattr(m, "kind", "unknown") for m in chunk]
        gas_limit = int(self._gas.estimate_tx_gas(kinds) * self.config.gas_multiplier)
        tx = self.factory.build(chunk, gas_limit=gas_limit)
        count = payload_msgs if payload_msgs is not None else len(chunk)
        entry = SubmittedTx(tx=tx, broadcast_time=self.env.now, payload_msgs=count)
        self.log.info(
            f"{label}_broadcast",
            chain=self.chain_id,
            tx_hash=tx.hash,
            count=count,
        )
        try:
            result = yield from self.client.call("broadcast_tx_sync", tx=tx)
        except RpcError as exc:
            self.broadcast_failures += 1
            self.log.error(
                "broadcast_failed", chain=self.chain_id, reason=str(exc)
            )
            return entry
        entry.broadcast = result
        if result.ok:
            return entry
        if result.code == SEQUENCE_MISMATCH_CODE and not retried:
            # Re-sync from chain and retry once with a fresh sequence.
            self.log.error(
                "account_sequence_mismatch",
                chain=self.chain_id,
                log=result.log,
            )
            try:
                yield from self.sync_sequence()
            except RpcError as exc:
                self.log.error(
                    "sequence_resync_failed", chain=self.chain_id, reason=str(exc)
                )
                return entry
            return (
                yield from self._sign_and_broadcast(
                    chunk, label, retried=True, payload_msgs=payload_msgs
                )
            )
        self.broadcast_failures += 1
        self.log.error(
            "broadcast_rejected",
            chain=self.chain_id,
            code=result.code,
            log=result.log,
        )
        return entry

    # ------------------------------------------------------------------
    # Confirmation polling
    # ------------------------------------------------------------------

    def confirm_txs(
        self, submitted: list[SubmittedTx], label: str
    ) -> Generator[Event, Any, list[SubmittedTx]]:
        """Poll ``/tx`` until every accepted tx confirms or the confirmation
        window lapses.  Failures surface as ``failed tx: no confirmation``.
        """
        pending = [s for s in submitted if s.accepted]
        deadline = self.env.now + self.config.confirm_timeout_seconds
        while pending and self.env.now < deadline:
            still_pending: list[SubmittedTx] = []
            for entry in pending:
                try:
                    lookup = yield from self.client.call(
                        "tx", tx_hash=entry.tx.hash
                    )
                except RpcError:
                    # Transient poll failure: keep polling until the
                    # deadline.  ``failed_tx_no_confirmation`` is logged
                    # only in the terminal sweep below, so reports count
                    # each unconfirmed tx exactly once.
                    still_pending.append(entry)
                    continue
                if lookup.found:
                    entry.confirmed = lookup
                    entry.confirm_time = self.env.now
                    self.log.info(
                        f"{label}_confirmation",
                        chain=self.chain_id,
                        tx_hash=entry.tx.hash,
                        code=lookup.code,
                        height=lookup.height,
                        count=entry.payload_msgs,
                    )
                    if self.tracer.enabled:
                        # Stamped at the same instant as the confirmation
                        # log record so trace- and journal-derived metrics
                        # agree exactly (see metrics.collect_fault_metrics).
                        for key in entry.packet_keys:
                            self.tracer.event(
                                f"{label}_confirmed",
                                self._track,
                                key=key,
                                chain=self.chain_id,
                                tx_hash=entry.tx.hash,
                                height=lookup.height,
                                code=lookup.code,
                            )
                else:
                    still_pending.append(entry)
            pending = still_pending
            if pending:
                yield self.env.timeout(self.config.confirm_poll_seconds)
        for entry in pending:
            self.log.error(
                "failed_tx_no_confirmation",
                chain=self.chain_id,
                tx_hash=entry.tx.hash,
            )
        return submitted
