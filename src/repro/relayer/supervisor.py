"""The relayer Supervisor (Fig. 4): event subscription and dispatch.

One listener process per chain consumes that chain's WebSocket stream,
parses events into per-block :class:`WorkBatch` items (the paper's
*extraction* steps) and routes them to the direction workers.  A failed
frame (>16 MB) surfaces here as ``Failed to collect events``; the
subscription stays latched server-side, so — exactly as the paper's §V
experiment shows — no further events arrive for it.
"""

from __future__ import annotations

from typing import Optional

from repro import calibration as cal
from repro.errors import RpcError
from repro.relayer.config import RelayerConfig
from repro.relayer.events import WorkBatch, batches_from_notification
from repro.relayer.logging import RelayerLog
from repro.relayer.worker import DirectionWorker
from repro.sim.core import SHUTDOWN, Environment, ProcessGroup
from repro.tendermint.node import ChainNode
from repro.tendermint.websocket import (
    BlockNotification,
    Subscription,
    SubscriptionClosed,
)
from repro.trace import NULL_TRACER, packet_key

#: Event kinds the supervisor subscribes to per chain.  A frozenset: used
#: for membership filtering only, never iterated (repro.lint D003).
SUBSCRIBED_KINDS = frozenset(
    {"send_packet", "write_acknowledgement", "acknowledge_packet"}
)

#: Event kinds whose batches are handed to a direction worker's queue
#: (``acknowledge_packet`` batches are logged only).
_WORKER_KINDS = frozenset({"send_packet", "write_acknowledgement"})

#: Log-step name per extracted event kind (the paper's 13-step naming).
_EXTRACTION_STEP = {
    "send_packet": "transfer_extraction",
    "write_acknowledgement": "recv_extraction",
    "acknowledge_packet": "ack_extraction",
}


class Supervisor:
    """Subscribes to both chains and feeds the direction workers."""

    def __init__(
        self,
        env: Environment,
        log: RelayerLog,
        heights: dict[str, int],
        client_host: str,
        config: Optional[RelayerConfig] = None,
        tracer=NULL_TRACER,
    ):
        self.env = env
        self.log = log
        self.heights = heights
        self.client_host = client_host
        self.config = config or RelayerConfig()
        self.tracer = tracer
        #: (chain_id, channel) -> worker whose recv stage consumes that
        #: chain's send_packet events for that channel.
        self._recv_routes: dict[tuple[str, str], DirectionWorker] = {}
        #: (chain_id, channel) -> worker whose ack stage consumes that
        #: chain's write_acknowledgement events for that channel.
        self._ack_routes: dict[tuple[str, str], DirectionWorker] = {}
        self.subscriptions: dict[str, Subscription] = {}
        self._nodes: dict[str, ChainNode] = {}
        self._started = False
        #: Listener processes, one per attached chain, retained so faults
        #: and teardown can interrupt them.
        self.processes = ProcessGroup(env)

    def route(self, worker: DirectionWorker) -> None:
        """Register a direction worker's event routes (per channel)."""
        self._recv_routes[
            (worker.src_end.chain_id, worker.src_end.channel_id)
        ] = worker
        self._ack_routes[
            (worker.dst_end.chain_id, worker.dst_end.channel_id)
        ] = worker

    def attach(self, node: ChainNode) -> None:
        subscription = node.websocket.subscribe(
            self.client_host, event_types=SUBSCRIBED_KINDS
        )
        self.subscriptions[node.chain.chain_id] = subscription
        self._nodes[node.chain.chain_id] = node

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for chain_id, subscription in self.subscriptions.items():
            self.processes.spawn(
                self._listen(chain_id, subscription),
                name=f"supervisor/{chain_id}",
            )

    def stop(self) -> None:
        """Teardown: interrupt the listeners and close the subscriptions."""
        self._started = False
        self.processes.interrupt_all(SHUTDOWN)
        for chain_id, subscription in self.subscriptions.items():
            self._nodes[chain_id].websocket.unsubscribe(subscription)
        self.subscriptions.clear()

    # ------------------------------------------------------------------

    def _listen(self, chain_id: str, subscription: Subscription):
        #: Last height seen before a disconnect; set while a gap check is
        #: pending after a successful resubscribe.
        gap_from: Optional[int] = None
        heights = self.heights
        log_error = self.log.error
        while True:
            item = yield subscription.queue.get()
            if isinstance(item, SubscriptionClosed):
                log_error(
                    "websocket_disconnected", chain=chain_id, reason=item.reason
                )
                # Deregister the dead subscription: the server keeps
                # delivering to registered subscriptions, so leaving it
                # behind leaks one queue per disconnect (stallcheck W-tier
                # residue finding).
                self._nodes[chain_id].websocket.unsubscribe(subscription)
                if not self.config.resubscribe_on_disconnect:
                    del self.subscriptions[chain_id]
                    return  # the stream is gone for good (Hermes 1.0.0-like)
                gap_from = heights.get(chain_id, 0)
                subscription = yield from self._resubscribe(chain_id)
                continue
            notification: BlockNotification = item
            heights[chain_id] = max(
                heights.get(chain_id, 0), notification.height
            )
            if gap_from is not None:
                if notification.height > gap_from + 1:
                    # Blocks committed during the outage: their events are
                    # lost, so hand the missed range to the clear machinery.
                    log_error(
                        "height_gap_detected",
                        chain=chain_id,
                        gap_from=gap_from,
                        resumed_at=notification.height,
                    )
                    self._recover_gap(chain_id)
                gap_from = None
            if not notification.ok:
                log_error(
                    "failed_to_collect_events",
                    chain=chain_id,
                    height=notification.height,
                    frame_bytes=notification.frame_bytes,
                )
                continue
            if not notification.events:
                continue
            # Parsing cost scales with the number of events in the frame.
            yield self.env.timeout(
                cal.RELAYER_EVENT_PARSE_SECONDS * len(notification.events)
            )
            batches = batches_from_notification(notification, SUBSCRIBED_KINDS)
            handed_off = False
            for batch in batches:
                if handed_off and batch.kind in _WORKER_KINDS:
                    # Hand-offs are serial: when one frame feeds several
                    # workers (hub blocks put send_packet *and* write_ack
                    # events in one tx), the later workers wake strictly
                    # after the first, so their follow-up queries cannot
                    # tie for the node's serial RPC slot.
                    yield self.env.timeout(cal.RELAYER_BATCH_HANDOFF_SECONDS)
                handed_off = self._dispatch(chain_id, batch) or handed_off

    def _resubscribe(self, chain_id: str):
        """Re-open the WebSocket subscription with capped exponential
        backoff; keeps trying while the node is down."""
        node = self._nodes[chain_id]
        backoff = self.config.resubscribe_backoff_seconds
        attempt = 0
        while True:
            yield self.env.timeout(backoff)
            attempt += 1
            try:
                subscription = node.websocket.subscribe(
                    self.client_host, event_types=SUBSCRIBED_KINDS
                )
            except RpcError as exc:
                self.log.error(
                    "resubscribe_failed",
                    chain=chain_id,
                    attempt=attempt,
                    reason=str(exc),
                )
                backoff = min(
                    backoff * 2.0, self.config.resubscribe_max_backoff_seconds
                )
                continue
            self.subscriptions[chain_id] = subscription
            self.log.info("resubscribed", chain=chain_id, attempt=attempt)
            return subscription

    def _recover_gap(self, chain_id: str) -> None:
        """Hand the missed heights to the clear machinery: every worker that
        consumes this chain's events re-scans pending commitments now.
        ``clear_once`` covers both the recv leg (missed send_packet events)
        and the ack leg (missed write_acknowledgement events).

        The supervisor is *not* the channel's only observer: in a K-relayer
        fleet every member sees the same gap.  ``request_clear`` is
        coordination-aware — a fleet member only scans the sequences its
        policy assigns it (and leader-policy standbys decline entirely), so
        one gap triggers K partitioned scans instead of K full duplicates."""
        for key in sorted(self._recv_routes):
            if key[0] == chain_id:
                self._recv_routes[key].request_clear()
        for key in sorted(self._ack_routes):
            if key[0] == chain_id:
                self._ack_routes[key].request_clear()

    def _dispatch(self, chain_id: str, batch: WorkBatch) -> bool:
        """Log/trace the batch; returns True if a worker queue received it."""
        step = _EXTRACTION_STEP.get(batch.kind)
        if step is not None:
            self.log.info(
                step, chain=chain_id, height=batch.height, count=len(batch)
            )
            if self.tracer.enabled:
                # One detect mark per packet: the relayer first learned of
                # this lifecycle step (extraction time, post frame parse).
                track = f"{self.log.relayer}/supervisor"
                for event in batch.events:
                    self.tracer.event(
                        "detect",
                        track,
                        key=packet_key(
                            event.src_chain,
                            event.packet.source_channel,
                            event.packet.sequence,
                        ),
                        kind=batch.kind,
                        chain=chain_id,
                        height=batch.height,
                        tx_hash=event.tx_hash,
                    )
        if batch.kind == "send_packet":
            worker = self._recv_routes.get((chain_id, batch.routing_channel))
            if worker is not None:
                worker.recv_queue.put(batch)
                return True
        elif batch.kind == "write_acknowledgement":
            worker = self._ack_routes.get((chain_id, batch.routing_channel))
            if worker is not None:
                worker.ack_queue.put(batch)
                return True
        # acknowledge_packet events are only logged (step 12 of Fig. 12);
        # the packet life cycle is complete when they appear.
        return False
