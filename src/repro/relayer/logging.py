"""Structured relayer event logs.

The paper's entire latency analysis is built from Hermes log timestamps
(§V notes the chain's own timestamps are skewed, so only relayer-side
clocks are used).  Each operational step emits a :class:`LogRecord`; the
framework's Cross-chain Event Connector consumes these to reconstruct the
13-step timeline of Fig. 12.

Step names follow the paper's breakdown, per message kind::

    transfer: broadcast, extraction, confirmation, data_pull
    recv:     build, broadcast, extraction, confirmation, data_pull
    ack:      build, broadcast, extraction, confirmation
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.core import Environment


def render_journal(logs: "Iterable[RelayerLog]") -> str:
    """Render structured logs into the canonical journal text.

    One ``time|relayer|level|event|fields`` line per record (times via
    ``repr`` so floats round-trip exactly), concatenated over the given
    logs in order.  This is THE byte-comparison format for determinism
    checks: the golden tests and the scheduler-race sanitizer both diff
    journals rendered here, and ``run_experiment(capture_journal=True)``
    attaches one to the report.
    """
    return "\n".join(
        f"{record.time!r}|{record.relayer}|{record.level}|"
        f"{record.event}|{record.fields!r}"
        for log in logs
        for record in log.records
    )


@dataclass(frozen=True, slots=True)
class LogRecord:
    time: float
    relayer: str
    level: str
    event: str
    fields: tuple[tuple[str, Any], ...]

    def field(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default


class RelayerLog:
    """Append-only log for one relayer instance."""

    __slots__ = ("env", "relayer", "clock_skew", "records")

    def __init__(self, env: Environment, relayer: str, clock_skew: float = 0.0):
        self.env = env
        self.relayer = relayer
        #: Models the paper's "timestamp mismatch" challenge: the relayer's
        #: clock can be offset from the chains' simulated time.
        self.clock_skew = clock_skew
        self.records: list[LogRecord] = []

    def _emit(self, level: str, event: str, **fields: Any) -> LogRecord:
        record = LogRecord(
            time=self.env.now + self.clock_skew,
            relayer=self.relayer,
            level=level,
            event=event,
            fields=tuple(fields.items()),
        )
        self.records.append(record)
        return record

    def info(self, event: str, **fields: Any) -> LogRecord:
        return self._emit("info", event, **fields)

    def error(self, event: str, **fields: Any) -> LogRecord:
        return self._emit("error", event, **fields)

    # -- query helpers ----------------------------------------------------------

    def by_event(self, event: str) -> list[LogRecord]:
        return [r for r in self.records if r.event == event]

    def count(self, event: str) -> int:
        return sum(1 for r in self.records if r.event == event)

    def errors(self) -> list[LogRecord]:
        return [r for r in self.records if r.level == "error"]

    def events_matching(self, events: Iterable[str]) -> list[LogRecord]:
        wanted = set(events)
        return [r for r in self.records if r.event in wanted]
