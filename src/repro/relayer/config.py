"""Relayer configuration, mirroring the Hermes settings the paper uses."""

from __future__ import annotations

from dataclasses import dataclass

from repro import calibration as cal


@dataclass
class RelayerConfig:
    """Settings for one relayer instance.

    ``clear_interval`` is Hermes's packet-clearing cadence in blocks; the
    paper's §V WebSocket experiment sets it to 0 (disabled), which is what
    leaves 81.8 % of packets stuck after a frame-size failure.
    """

    name: str = "hermes"
    max_msgs_per_tx: int = cal.MAX_MSGS_PER_TX
    gas_price: float = cal.GAS_PRICE
    #: Multiplier applied to estimated gas when setting tx gas limits
    #: (Hermes's default_gas/max_gas behaviour, simplified).
    gas_multiplier: float = 1.3
    #: Packet clear interval in blocks (0 disables clearing).
    clear_interval: int = 100
    #: Concurrent in-flight packet-data pulls.  Hermes is effectively 1
    #: (and Tendermint's serial RPC would serialise more anyway); the
    #: parallel-RPC ablation raises both sides.
    pull_concurrency: int = 1
    #: EXTENSION (not in Hermes 1.0.0): static work partitioning between
    #: relayer instances, the coordination mechanism the paper wishes
    #: ICS-18 specified.  Instance ``coordination_index`` of
    #: ``coordination_total`` handles only the transactions it owns (by
    #: tx-hash partition); with the default total of 1 every instance
    #: relays everything, reproducing Hermes's uncoordinated behaviour.
    coordination_index: int = 0
    coordination_total: int = 1
    #: Confirmation polling cadence against /tx.
    confirm_poll_seconds: float = cal.RELAYER_CONFIRM_POLL_SECONDS
    #: Give up confirming a tx after this many seconds.
    confirm_timeout_seconds: float = 120.0
    #: RPC client timeout.
    rpc_timeout_seconds: float = cal.RPC_CLIENT_TIMEOUT_SECONDS
    #: Retries (on top of the first attempt) for transient RPC failures
    #: (timeout / overload / node-down), with capped exponential backoff.
    #: 0 disables retries — Hermes 1.0.0's effective behaviour for queries,
    #: and the default so baseline experiments are unchanged.
    rpc_retry_attempts: int = 0
    #: First retry backoff; doubles per attempt up to the cap below.
    rpc_retry_base_seconds: float = 0.5
    rpc_retry_max_seconds: float = 8.0
    #: Re-open a WebSocket subscription when the connection drops (the
    #: fault-injection disconnect, *not* the §V frame-limit latch).
    resubscribe_on_disconnect: bool = True
    #: First resubscribe backoff; doubles per attempt up to the cap.
    resubscribe_backoff_seconds: float = 1.0
    resubscribe_max_backoff_seconds: float = 30.0
    #: Timeout offset (in destination blocks) stamped on relayed... not used
    #: by the relayer itself; kept for CLI convenience.
    default_timeout_blocks: int = cal.DEFAULT_TIMEOUT_BLOCKS
