"""Parsing chain events into relayer work items."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Optional

from repro.ibc.packet import Height, Packet
from repro.tendermint.websocket import BlockNotification, EventDescriptor


@dataclass(slots=True)
class PacketEvent:
    """One IBC packet event the relayer must act on.

    ``src_chain`` is the chain the packet *originated* on (the
    ``packet_src_chain`` event attribute), which together with the source
    channel and sequence forms the globally unique trace key in
    multi-chain topologies.
    """

    kind: str  # send_packet | write_acknowledgement | ...
    height: int
    tx_hash: bytes
    packet: Packet
    src_chain: str = ""


@dataclass(slots=True)
class WorkBatch:
    """All packet events of one kind and channel from one block.

    ``routing_channel`` is the channel end used to pick the direction
    worker: the *source* channel for ``send_packet`` events, the
    *destination* channel for acknowledgement-side events.
    """

    chain_id: str
    height: int
    kind: str
    routing_channel: str = ""
    events: list[PacketEvent] = field(default_factory=list)

    @property
    def tx_hashes(self) -> list[bytes]:
        seen: list[bytes] = []
        known: set[bytes] = set()
        for event in self.events:
            if event.tx_hash not in known:
                known.add(event.tx_hash)
                seen.append(event.tx_hash)
        return seen

    def events_for_tx(self, tx_hash: bytes) -> list[PacketEvent]:
        return [e for e in self.events if e.tx_hash == tx_hash]

    def __len__(self) -> int:
        return len(self.events)


def packet_from_descriptor(descriptor: EventDescriptor) -> Optional[Packet]:
    attrs = descriptor.attributes
    if "packet_sequence" not in attrs:
        return None
    timeout_height = attrs["packet_timeout_height"]
    if not isinstance(timeout_height, Height):
        timeout_height = Height.zero()
    return Packet(
        sequence=attrs["packet_sequence"],
        source_port=attrs["packet_src_port"],
        source_channel=attrs["packet_src_channel"],
        destination_port=attrs["packet_dst_port"],
        destination_channel=attrs["packet_dst_channel"],
        data=attrs["packet_data"],
        timeout_height=timeout_height,
        timeout_timestamp=float(attrs["packet_timeout_timestamp"]),
    )


def routing_channel_for(kind: str, packet: Packet) -> str:
    """The channel end that identifies the responsible direction worker."""
    if kind == "send_packet":
        return packet.source_channel
    return packet.destination_channel


def batches_from_notification(
    notification: BlockNotification, kinds: Collection[str]
) -> list[WorkBatch]:
    """Split a block notification into per-(kind, channel) work batches.

    ``kinds`` is a membership filter only — it is never iterated, so the
    produced batch order depends exclusively on the (deterministic) event
    order inside the notification.
    """
    batches: dict[tuple[str, str], WorkBatch] = {}
    for descriptor in notification.events:
        if descriptor.type not in kinds:
            continue
        packet = packet_from_descriptor(descriptor)
        if packet is None or descriptor.tx_hash is None:
            continue
        channel = routing_channel_for(descriptor.type, packet)
        key = (descriptor.type, channel)
        batch = batches.get(key)
        if batch is None:
            batch = WorkBatch(
                chain_id=notification.chain_id,
                height=notification.height,
                kind=descriptor.type,
                routing_channel=channel,
            )
            batches[key] = batch
        batch.events.append(
            PacketEvent(
                kind=descriptor.type,
                height=notification.height,
                tx_hash=descriptor.tx_hash,
                packet=packet,
                src_chain=descriptor.attributes.get("packet_src_chain", ""),
            )
        )
    return list(batches.values())
