"""Fault schedules: declarative, deterministic fault timelines.

Every fault names its target(s) and an activation time ``at`` in sim
seconds *relative to the schedule's start* (the experiment framework
starts schedules at the measurement-window start, so faults land inside
the measured region regardless of bootstrap length).  Specs are frozen
dataclasses: hashable, with stable ``repr`` — benchmark memoization and
report serialization both rely on that.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Union

from repro.errors import SchemaError, SimulationError


@dataclass(frozen=True)
class NodeCrash:
    """Take ``host``'s full node down at ``at`` for ``duration`` seconds.

    While down: the RPC server refuses every request with
    ``NodeUnavailableError``, all WebSocket subscriptions are severed, and
    validators hosted on the machine stop proposing/voting (they resume,
    without state loss, at restart — a fail-recover crash, not Byzantine).
    """

    host: str
    at: float
    duration: float


@dataclass(frozen=True)
class RpcBrownout:
    """Silently drop ``drop_probability`` of ``host``'s RPC requests
    between ``at`` and ``at + duration``.  Clients see timeouts, not
    refusals — the degraded-but-alive node of an I/O-saturated machine."""

    host: str
    at: float
    duration: float
    drop_probability: float = 0.5


@dataclass(frozen=True)
class WsDisconnect:
    """Reset every WebSocket subscription on ``host`` at ``at``.

    A connection-level reset: subscribers get a ``SubscriptionClosed``
    sentinel and must subscribe anew.  Unlike :class:`NodeCrash` the node
    keeps serving RPC, so an immediate resubscribe succeeds.
    """

    host: str
    at: float


@dataclass(frozen=True)
class LinkDegradation:
    """Override the ``a``–``b`` link with the given characteristics
    between ``at`` and ``at + duration``; the previous link (explicit or
    default) is restored afterwards."""

    a: str
    b: str
    at: float
    duration: float
    latency: float
    jitter: float = 0.0
    loss: float = 0.0


Fault = Union[NodeCrash, RpcBrownout, WsDisconnect, LinkDegradation]

#: Wire-format discriminator tags, one per fault spec class.  The tag is
#: the ``"kind"`` key of a serialized fault dict.
FAULT_KINDS: dict[str, type] = {
    "node_crash": NodeCrash,
    "rpc_brownout": RpcBrownout,
    "ws_disconnect": WsDisconnect,
    "link_degradation": LinkDegradation,
}
_KIND_BY_CLASS = {cls: kind for kind, cls in FAULT_KINDS.items()}


def fault_to_dict(fault: Fault) -> dict[str, Any]:
    """Serialize one fault spec to its tagged wire dict."""
    kind = _KIND_BY_CLASS.get(type(fault))
    if kind is None:
        raise SchemaError(f"cannot serialize fault of type {type(fault).__name__}")
    out: dict[str, Any] = {"kind": kind}
    for spec_field in dataclasses.fields(fault):
        out[spec_field.name] = getattr(fault, spec_field.name)
    return out


def fault_from_dict(data: Any) -> Fault:
    """Load one fault spec from its tagged wire dict, rejecting unknown
    kinds and unknown keys."""
    if not isinstance(data, dict):
        raise SchemaError(f"fault spec must be a dict, got {type(data).__name__}")
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(FAULT_KINDS))
        raise SchemaError(f"unknown fault kind {kind!r} (known kinds: {known})")
    known_keys = {spec_field.name for spec_field in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known_keys)
    if unknown:
        raise SchemaError(
            f"unknown key(s) {', '.join(unknown)} in {kind} fault spec "
            f"(known keys: {', '.join(sorted(known_keys))})"
        )
    return cls(**payload)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of faults, validated at construction."""

    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            # Accept any iterable but store a tuple (hashable, stable repr).
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if fault.at < 0.0:
                raise SimulationError(
                    f"fault activation time must be >= 0, got {fault.at!r}"
                )
            duration = getattr(fault, "duration", 0.0)
            if duration < 0.0:
                raise SimulationError(
                    f"fault duration must be >= 0, got {duration!r}"
                )
            if isinstance(fault, RpcBrownout) and not (
                0.0 <= fault.drop_probability <= 1.0
            ):
                raise SimulationError(
                    "brownout drop_probability must be in [0, 1], got "
                    f"{fault.drop_probability!r}"
                )
            if isinstance(fault, LinkDegradation) and not (
                0.0 <= fault.loss <= 1.0
            ):
                raise SimulationError(
                    f"link loss must be in [0, 1], got {fault.loss!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def to_dict(self) -> dict[str, Any]:
        """Wire form: a dict with one ``"faults"`` list of tagged specs."""
        return {"faults": [fault_to_dict(fault) for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Any) -> "FaultSchedule":
        """Exact inverse of :meth:`to_dict`; rejects unknown keys."""
        if not isinstance(data, dict):
            raise SchemaError(
                f"fault schedule must be a dict, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"faults"})
        if unknown:
            raise SchemaError(
                f"unknown key(s) {', '.join(unknown)} in fault schedule "
                "(known keys: faults)"
            )
        specs = data.get("faults", [])
        if not isinstance(specs, list):
            raise SchemaError(
                f"fault schedule 'faults' must be a list, got "
                f"{type(specs).__name__}"
            )
        return cls(tuple(fault_from_dict(spec) for spec in specs))

    @property
    def horizon(self) -> float:
        """Sim seconds (from schedule start) until the last fault clears."""
        end = 0.0
        for fault in self.faults:
            end = max(end, fault.at + getattr(fault, "duration", 0.0))
        return end
