"""Deterministic fault injection for robustness experiments.

The paper's §V failure study covers exactly one fault — the WebSocket
16 MB frame limit.  This package generalises it: a :class:`FaultSchedule`
describes *when* faults open and close (in sim seconds relative to the
schedule's start), and a :class:`FaultInjector` drives them against a
running testbed.  All randomness (brown-out drop decisions) comes from
dedicated :class:`~repro.sim.rng.RngRegistry` streams, so a run with a
fault schedule is just as byte-reproducible as one without
(``tests/test_determinism_golden.py``).

Fault kinds:

* :class:`NodeCrash` — a machine's full node goes down: RPC refuses with
  :class:`~repro.errors.NodeUnavailableError`, WebSocket subscriptions are
  severed, and any validators hosted there stop participating in
  consensus until the restart.
* :class:`RpcBrownout` — the node stays up but silently drops a fraction
  of requests; clients observe genuine
  :class:`~repro.errors.RpcTimeoutError` with realistic timing.
* :class:`WsDisconnect` — WebSocket connections reset mid-stream
  (distinct from the §V frame-limit latch, which stays connected).
* :class:`LinkDegradation` — a temporary
  :class:`~repro.sim.network.LinkSpec` override (latency/jitter/loss)
  between two hosts.
"""

from repro.faults.injector import FaultInjector, FaultWindow
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
    RpcBrownout,
    WsDisconnect,
    fault_from_dict,
    fault_to_dict,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultWindow",
    "LinkDegradation",
    "NodeCrash",
    "RpcBrownout",
    "WsDisconnect",
    "fault_from_dict",
    "fault_to_dict",
]
