"""The fault injector: drives a :class:`FaultSchedule` against a testbed.

One sim process per fault waits for its activation time, applies the
fault to every affected component, and (for windowed faults) restores
the component at the window's end.  The injector records every window it
opened in :attr:`FaultInjector.windows`, which the experiment framework
folds into the report.

Determinism: activation/restoration are pure sim-time waits; the only
randomness — brown-out drop decisions — draws from a per-fault *keyed*
stream (``faults/brownout/<host>/<index>``), so adding or removing one
fault never shifts another's draws, and same-instant requests cannot
swap drop decisions under a different event-heap tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.schedule import (
    Fault,
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
    RpcBrownout,
    WsDisconnect,
)
from repro.sim.core import Environment, ProcessGroup
from repro.sim.network import LinkSpec, Network
from repro.sim.rng import RngRegistry
from repro.tendermint.node import Chain


@dataclass(slots=True)
class FaultWindow:
    """One applied fault occurrence, for reporting."""

    kind: str
    target: str
    start: float
    end: Optional[float] = None


class FaultInjector:
    """Applies a schedule to a set of chains sharing one network."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        chains: list[Chain],
        rng: RngRegistry,
        schedule: FaultSchedule,
    ):
        self.env = env
        self.network = network
        self.chains = chains
        self.rng = rng
        self.schedule = schedule
        #: Every window this injector opened, in activation order.
        self.windows: list[FaultWindow] = []
        self._started = False
        #: One armed process per scheduled fault, retained so a teardown
        #: can cancel faults that have not fired yet.
        self.processes = ProcessGroup(env)

    def start(self) -> None:
        """Arm the schedule; fault times count from the current sim time."""
        if self._started:
            return
        self._started = True
        base = self.env.now
        for index, fault in enumerate(self.schedule.faults):
            self.processes.spawn(
                self._run(fault, index, base), name=f"fault/{index}"
            )

    # ------------------------------------------------------------------

    def _nodes_on(self, host: str):
        """Full nodes on ``host``, across chains, in chain declaration
        order (a machine typically hosts one node per chain)."""
        return [
            chain.nodes[host] for chain in self.chains if host in chain.nodes
        ]

    def _run(self, fault: Fault, index: int, base: float):
        yield self.env.timeout(max(0.0, base + fault.at - self.env.now))
        if isinstance(fault, NodeCrash):
            yield from self._run_crash(fault)
        elif isinstance(fault, RpcBrownout):
            yield from self._run_brownout(fault, index)
        elif isinstance(fault, WsDisconnect):
            self._run_disconnect(fault)
        elif isinstance(fault, LinkDegradation):
            yield from self._run_link(fault)

    def _run_crash(self, fault: NodeCrash):
        window = FaultWindow("node_crash", fault.host, start=self.env.now)
        self.windows.append(window)
        silenced: list[tuple[Chain, str]] = []
        for node in self._nodes_on(fault.host):
            node.set_crashed(True)
        for chain in self.chains:
            for name, host in sorted(chain.validator_hosts.items()):
                if host == fault.host:
                    chain.engine.set_silent(name, True)
                    silenced.append((chain, name))
        yield self.env.timeout(fault.duration)
        # Restart: the node recovers its (never lost) state and rejoins.
        for node in self._nodes_on(fault.host):
            node.set_crashed(False)
        for chain, name in silenced:
            chain.engine.set_silent(name, False)
        window.end = self.env.now

    def _run_brownout(self, fault: RpcBrownout, index: int):
        window = FaultWindow("rpc_brownout", fault.host, start=self.env.now)
        self.windows.append(window)
        until = self.env.now + fault.duration
        stream = self.rng.keyed(f"faults/brownout/{fault.host}/{index}")
        for node in self._nodes_on(fault.host):
            node.rpc.set_brownout(fault.drop_probability, until, stream)
        yield self.env.timeout(fault.duration)
        window.end = self.env.now

    def _run_disconnect(self, fault: WsDisconnect) -> None:
        window = FaultWindow("ws_disconnect", fault.host, start=self.env.now)
        window.end = self.env.now  # instantaneous: the reset has no width
        self.windows.append(window)
        for node in self._nodes_on(fault.host):
            node.websocket.disconnect_all("fault injection")

    def _run_link(self, fault: LinkDegradation):
        target = f"{fault.a}<->{fault.b}"
        window = FaultWindow("link_degradation", target, start=self.env.now)
        self.windows.append(window)
        previous = self.network.link_override(fault.a, fault.b)
        self.network.set_link(
            fault.a,
            fault.b,
            LinkSpec(latency=fault.latency, jitter=fault.jitter, loss=fault.loss),
        )
        yield self.env.timeout(fault.duration)
        if previous is None:
            self.network.clear_link(fault.a, fault.b)
        else:
            self.network.set_link(fault.a, fault.b, previous)
        window.end = self.env.now
