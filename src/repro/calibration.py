"""Calibration constants for the simulated Gaia/Tendermint/Hermes stack.

Every constant below is derived from a number the paper reports, so that the
simulation reproduces the *shapes* of the paper's tables and figures.  The
derivations are documented inline; `benchmarks/` verifies the resulting
behaviour against the paper's values.

The paper's testbed: Intel i7-9700 3 GHz, 16 GB RAM, HDD, Debian 11, 200 ms
enforced RTT, two Gaia v7.0.3 chains with 5 validators each, Hermes 1.0.0,
>=5 s block interval, 100 transfer messages per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import SchemaError

# ---------------------------------------------------------------------------
# Message / gas model (paper §IV-A, "Hermes Relayer" paragraph)
# ---------------------------------------------------------------------------

#: Maximum IBC messages per transaction — the Hermes limit the paper uses.
MAX_MSGS_PER_TX = 100

#: Average gas per 100-message transaction, from the paper: 3 669 161 gas for
#: transfers, 7 238 699 for receives, 3 107 462 for acknowledgements.
GAS_PER_TRANSFER_MSG = 36_692  # 3_669_161 / 100, rounded
GAS_PER_RECV_MSG = 72_387  # 7_238_699 / 100
GAS_PER_ACK_MSG = 31_075  # 3_107_462 / 100
#: Fixed per-transaction gas overhead (signature verification etc.).
GAS_TX_OVERHEAD = 50_000
#: Gas price used in the paper's Hermes configuration.
GAS_PRICE = 0.01

#: Relative gas-variance bounds the paper reports (1 %, 4.1 %, 7.6 %) — the
#: simulation draws per-message gas uniformly within these bands.
GAS_JITTER_TRANSFER = 0.01
GAS_JITTER_RECV = 0.041
GAS_JITTER_ACK = 0.076

# ---------------------------------------------------------------------------
# Event / payload sizes (paper §V, "Transaction data collection" and
# "WebSocket space limit")
# ---------------------------------------------------------------------------

#: Approximate indexed-event bytes per message kind.  Derived from the
#: paper's observation that a block with 2 000 transfer messages returns
#: 331 706 lines (~166 lines/msg) while the same count of recv messages
#: returns 579 919 lines (~290 lines/msg): recv data is ~1.75x larger.
#: With ~2 000 000 IBC transfer events needed to overflow a 16 MB frame in
#: the paper's §V experiment (100 000 transfers overflowed it comfortably),
#: we put a transfer event at 400 bytes and scale the rest by line ratio.
EVENT_BYTES_TRANSFER = 400
EVENT_BYTES_RECV = 700
EVENT_BYTES_ACK = 300

#: Tendermint WebSocket maximum frame size (16 MB), per the paper.
WEBSOCKET_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Approximate wire size of one IBC message inside a transaction.
TX_BYTES_PER_MSG = 300
TX_BYTES_OVERHEAD = 350

# ---------------------------------------------------------------------------
# Tendermint consensus timing
# ---------------------------------------------------------------------------

#: The paper configures a minimum 5 s interval between consecutive blocks
#: (``timeout_commit``-style wait after each commit).
MIN_BLOCK_INTERVAL = 5.0

#: Base consensus latency (propose + two voting rounds) for 5 validators and
#: a small payload: ~25 ms per the HotStuff measurements the paper cites.
CONSENSUS_BASE_LATENCY = 0.025

#: Per-message execution cost in DeliverTx.  Drives the Fig. 7 block-interval
#: growth: at 13 000 RPS a block can carry ~65 000 messages; with 90 us per
#: message that adds ~5.9 s of execution, doubling the block interval —
#: matching Fig. 7's roughly 2x interval growth at the top of the sweep.
DELIVER_TX_SECONDS_PER_MSG = 90e-6

#: Superlinear block-execution term (event indexing + goleveldb writes on
#: the testbed's 7200RPM HDDs grow worse than linearly with block size).
#: Fitted to Fig. 6 / Fig. 7: with interval T(B) = 5s + consensus + exec and
#: exec = overhead + 90us*B + 4.1e-8*B^2, the committed throughput B/T(B)
#: passes through the paper's anchors: ~200 TFPS @ 250 RPS, peak ~961 TFPS
#: near 3 000 RPS, ~830 @ 4 000, ~499 @ 9 000.
INDEXING_SECONDS_PER_MSG_SQ = 4.1e-8

#: Fixed per-block processing overhead (BeginBlock/EndBlock/Commit, disk).
BLOCK_OVERHEAD_SECONDS = 0.05

#: Proposer's cut-off: transactions arriving within this window before the
#: proposal are not included (models gossip/reap timing).
PROPOSAL_CUTOFF_SECONDS = 0.05

#: Mempool capacity in transactions (Tendermint default is 5 000).
MEMPOOL_MAX_TXS = 5_000

#: Default block gas limit.  Gaia's consensus params allow large blocks; the
#: paper commits up to ~75 000 transfer messages in one block (§V websocket
#: experiment: 1 000 txs x 100 transfers), so the limit must admit ~100k
#: messages' worth of transfer gas: 100 000 x 36 692 = 3.7e9.
BLOCK_MAX_GAS = 4_000_000_000
#: Maximum block size in bytes (Tendermint's hard cap ~21 MB; we allow the
#: §V experiment's 1 000-tx block: 1 000 x (350 + 100 x 300) = ~30 MB).
BLOCK_MAX_BYTES = 34 * 1024 * 1024

# ---------------------------------------------------------------------------
# Tendermint RPC service times — THE bottleneck (paper §IV-B)
# ---------------------------------------------------------------------------
# The RPC server processes queries one at a time ("Tendermint is unable to
# process queries in parallel").  Service time grows with the amount of
# event data scanned/serialised.
#
# Calibration anchors (Fig. 12, 5 000 transfers in one block):
#   * "transfer data pull" = 110 s.  Hermes issues one packet-data query per
#     source transaction (50 of them), and each tx_search-style query scans
#     the whole height's indexed events: 50 x 5 000 x c_t = 110 s
#     => c_t = 0.44 ms per transfer-event scanned.
#   * "recv data pull" = 207 s on the destination chain:
#     50 x 5 000 x c_r = 207 s => c_r = 0.828 ms per recv-event scanned.
#   These quadratic-in-block-occupancy costs are what produce Fig. 13's
#   U-shape and the Fig. 8 saturation, so they are modelled structurally in
#   ``tendermint/rpc.py`` (cost = base + events_in_scope x per-event cost).

#: Fixed cost of any RPC query (routing, JSON envelope).
RPC_BASE_SECONDS = 0.003

#: Per-event scan/serialisation cost for packet-data queries, by the kind of
#: event being scanned (see derivation above).
RPC_SCAN_SECONDS_PER_TRANSFER_EVENT = 0.44e-3
RPC_SCAN_SECONDS_PER_RECV_EVENT = 0.828e-3
RPC_SCAN_SECONDS_PER_ACK_EVENT = 0.30e-3

#: Serialisation cost per response byte for bulk queries (block contents).
RPC_SECONDS_PER_RESPONSE_BYTE = 6e-9

#: Cost of broadcast_tx_sync: CheckTx runs synchronously; grows with tx size.
RPC_BROADCAST_BASE_SECONDS = 0.004
RPC_BROADCAST_SECONDS_PER_MSG = 0.10e-3

#: Cost of a /tx confirmation lookup (indexed by hash).  Together with the
#: 2.5 s CLI poll interval this pins the Table I collapse: per-account poll
#: load saturates the serial RPC at (R/20 accounts) x (0.005/2.5) = R*1e-4,
#: i.e. utilisation 1.0 at exactly 10 000 RPS — where the paper first sees
#: submission failures.
RPC_TX_LOOKUP_SECONDS = 0.005

#: Client-side request timeout.  When the serial RPC queue exceeds this, the
#: client sees ``failed tx: no confirmation`` / dropped requests — the
#: mechanism behind Table I's submission collapse above 10 000 RPS.
RPC_CLIENT_TIMEOUT_SECONDS = 10.0

#: Maximum outstanding requests the RPC server will queue before shedding.
RPC_MAX_QUEUE = 1_200

# Connection-pressure overload (Table I's collapse above 10 000 RPS).
#
# Every workload account is a separate client process holding connections
# to the node (Tendermint's default ``max_open_connections`` is 900, and
# typical file-descriptor ulimits are 1024).  Closed-loop request queueing
# alone cannot reproduce the observed cliff — clients self-throttle — so we
# model connection-table pressure directly: once the number of *distinct
# active clients* exceeds a threshold, new requests are refused with a
# probability that rises steeply.  The constants are calibrated to Table I:
# at 10 000 RPS (500 accounts) ~80 % of requests still get through, at
# 11 000 (550) ~39 %, and by 14 000 (700) ~8.5 %.  This is an explicitly
# empirical surrogate for OS-level connection exhaustion (documented in
# DESIGN.md / EXPERIMENTS.md).
RPC_OVERLOAD_CLIENT_THRESHOLD = 450
RPC_OVERLOAD_SCALE = 0.35
RPC_OVERLOAD_MAX_SHED = 0.95
RPC_CLIENT_ACTIVITY_WINDOW = 10.0

# ---------------------------------------------------------------------------
# Hermes relayer timing
# ---------------------------------------------------------------------------

#: CPU time for Hermes to build (encode + attach proof) one IBC message.
#: Anchor: Fig. 12 shows recv build+broadcast+confirm-minus-pull = ~54 s for
#: 5 000 messages across 50 txs; after subtracting broadcast round trips and
#: two ~8 s block-commit waits, building contributes ~35 s => ~7 ms/msg
#: (proof queries are folded into this figure as light-client verification).
RELAYER_BUILD_SECONDS_PER_MSG = 7e-3

#: CPU time to sign and encode one transaction (independent of msg count
#: beyond the per-msg build cost above).
RELAYER_SIGN_SECONDS_PER_TX = 8e-3

#: Time for Hermes to parse one event out of a WebSocket notification.
RELAYER_EVENT_PARSE_SECONDS = 20e-6

#: The supervisor hands parsed batches to the direction workers one at a
#: time; each hand-off after the first costs this much.  A block whose
#: frame feeds two workers (hub blocks: recv + forward + write_ack in one
#: tx) therefore wakes them at strictly different instants, so their
#: follow-up queries never tie for the serial RPC slot.
RELAYER_BATCH_HANDOFF_SECONDS = 5e-6

#: Interval at which Hermes polls /tx for confirmation of submitted txs.
RELAYER_CONFIRM_POLL_SECONDS = 1.0

#: Workload-connector (CLI) cost to prepare one 100-msg transfer tx.
CLI_PREPARE_SECONDS_PER_TX = 6e-3

#: Workload-connector confirmation poll interval per account.
CLI_CONFIRM_POLL_SECONDS = 2.5

# ---------------------------------------------------------------------------
# Deployment defaults (paper §III-C / §III-D)
# ---------------------------------------------------------------------------

DEFAULT_VALIDATORS = 5
DEFAULT_RTT = 0.200
DEFAULT_TIMEOUT_BLOCKS = 100  # packet timeout offset in destination heights


@dataclass(frozen=True)
class Calibration:
    """A bundle of tunables, overridable per experiment (for ablations).

    The defaults reproduce the paper's deployment; ablation benchmarks
    override single fields (e.g. ``rpc_workers=4`` for the parallel-RPC
    what-if).
    """

    max_msgs_per_tx: int = MAX_MSGS_PER_TX
    min_block_interval: float = MIN_BLOCK_INTERVAL
    consensus_base_latency: float = CONSENSUS_BASE_LATENCY
    deliver_tx_seconds_per_msg: float = DELIVER_TX_SECONDS_PER_MSG
    indexing_seconds_per_msg_sq: float = INDEXING_SECONDS_PER_MSG_SQ
    block_overhead_seconds: float = BLOCK_OVERHEAD_SECONDS
    proposal_cutoff_seconds: float = PROPOSAL_CUTOFF_SECONDS
    mempool_max_txs: int = MEMPOOL_MAX_TXS
    block_max_gas: int = BLOCK_MAX_GAS
    block_max_bytes: int = BLOCK_MAX_BYTES

    rpc_workers: int = 1  # the paper's finding: serial; ablation sets >1
    rpc_base_seconds: float = RPC_BASE_SECONDS
    rpc_scan_seconds_per_transfer_event: float = RPC_SCAN_SECONDS_PER_TRANSFER_EVENT
    rpc_scan_seconds_per_recv_event: float = RPC_SCAN_SECONDS_PER_RECV_EVENT
    rpc_scan_seconds_per_ack_event: float = RPC_SCAN_SECONDS_PER_ACK_EVENT
    rpc_seconds_per_response_byte: float = RPC_SECONDS_PER_RESPONSE_BYTE
    rpc_broadcast_base_seconds: float = RPC_BROADCAST_BASE_SECONDS
    rpc_broadcast_seconds_per_msg: float = RPC_BROADCAST_SECONDS_PER_MSG
    rpc_tx_lookup_seconds: float = RPC_TX_LOOKUP_SECONDS
    rpc_client_timeout_seconds: float = RPC_CLIENT_TIMEOUT_SECONDS
    rpc_max_queue: int = RPC_MAX_QUEUE
    rpc_overload_client_threshold: int = RPC_OVERLOAD_CLIENT_THRESHOLD
    rpc_overload_scale: float = RPC_OVERLOAD_SCALE
    rpc_overload_max_shed: float = RPC_OVERLOAD_MAX_SHED
    rpc_client_activity_window: float = RPC_CLIENT_ACTIVITY_WINDOW

    websocket_max_frame_bytes: int = WEBSOCKET_MAX_FRAME_BYTES

    relayer_build_seconds_per_msg: float = RELAYER_BUILD_SECONDS_PER_MSG
    relayer_sign_seconds_per_tx: float = RELAYER_SIGN_SECONDS_PER_TX
    relayer_event_parse_seconds: float = RELAYER_EVENT_PARSE_SECONDS
    relayer_confirm_poll_seconds: float = RELAYER_CONFIRM_POLL_SECONDS
    cli_prepare_seconds_per_tx: float = CLI_PREPARE_SECONDS_PER_TX
    cli_confirm_poll_seconds: float = CLI_CONFIRM_POLL_SECONDS

    gas_per_transfer_msg: int = GAS_PER_TRANSFER_MSG
    gas_per_recv_msg: int = GAS_PER_RECV_MSG
    gas_per_ack_msg: int = GAS_PER_ACK_MSG
    gas_tx_overhead: int = GAS_TX_OVERHEAD
    gas_price: float = GAS_PRICE

    event_bytes: dict[str, int] = field(
        default_factory=lambda: {
            "send_packet": EVENT_BYTES_TRANSFER,
            "recv_packet": EVENT_BYTES_RECV,
            "write_acknowledgement": EVENT_BYTES_RECV,
            "acknowledge_packet": EVENT_BYTES_ACK,
            "timeout_packet": EVENT_BYTES_ACK,
        }
    )

    def with_overrides(self, **kwargs: object) -> "Calibration":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    def to_dict(self) -> dict:
        """Wire form: every tunable by field name (``event_bytes`` nests)."""
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = dict(value) if spec.name == "event_bytes" else value
        return out

    @classmethod
    def from_dict(cls, data: object) -> "Calibration":
        """Exact inverse of :meth:`to_dict`; rejects unknown keys.

        Missing keys fall back to the defaults above, so documents written
        by older library versions keep loading.
        """
        if not isinstance(data, dict):
            raise SchemaError(
                f"calibration must be a dict, got {type(data).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SchemaError(
                f"unknown key(s) {', '.join(unknown)} in calibration "
                f"(known keys: {', '.join(sorted(known))})"
            )
        return cls(**data)


#: The default calibration used throughout the library.
DEFAULT_CALIBRATION = Calibration()
