"""The analysis driver: file discovery, parsing and rule execution.

Linting runs in two phases.  Phase one parses each module and runs the
per-module rules.  Phase two builds a :class:`~repro.lint.program.ProgramIndex`
over *every* parsed module and runs the whole-program rules (D005/D006/
R003 and the Tier P performance rules), which need the cross-module
symbol table and call graph.  Both phases share the same suppression and
exemption filtering — and the same parsed-AST cache: every module is
``ast.parse``\\ d exactly once per (content, path) and the resulting
:class:`ModuleContext` is handed to both phases, and reused across
repeated ``lint_paths`` calls in one process (the tier-1 lint gates run
the driver several times over overlapping trees).
"""

from __future__ import annotations

import ast
import json
import os
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.program import ProgramIndex, all_program_rules, build_stream_inventory
from repro.lint.rules import all_rules
from repro.lint.rules.base import ModuleContext


def iter_python_files(
    paths: Sequence[str], exclude_dirs: Sequence[str] = ()
) -> Iterator[str]:
    """Expand files/directories into a de-duplicated, globally sorted list.

    Sorting happens across *all* arguments (not per argument), so finding
    output — and the program index — is stable regardless of CLI argument
    order or overlap.  ``exclude_dirs`` prunes directory names during
    directory expansion only; explicitly named files are always analyzed.
    """
    known: set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                relative = candidate.relative_to(path)
                if any(part in exclude_dirs for part in relative.parts[:-1]):
                    continue
                known.add(os.path.normpath(str(candidate)))
        else:
            known.add(os.path.normpath(str(path)))
    return iter(sorted(known))


def _parse_module(
    source: str, path: str
) -> "tuple[Optional[ModuleContext], Optional[Finding]]":
    posix_path = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule_id=PARSE_ERROR_RULE,
            message=f"cannot parse module: {exc.msg}",
        )
    return (
        ModuleContext(path=path, posix_path=posix_path, source=source, tree=tree),
        None,
    )


class _AstCache:
    """Stat-validated cache of parsed modules, shared by both lint phases.

    Keyed by the path spelling the driver sees (already normalized by
    :func:`iter_python_files`) and validated against ``(mtime_ns, size)``,
    so an edited file re-parses while repeated gate runs over an unchanged
    tree parse each module once per process instead of once per call.
    """

    def __init__(self) -> None:
        self._entries: dict[
            str, tuple[tuple[int, int], Optional[ModuleContext], Optional[Finding]]
        ] = {}

    def load(
        self, filename: str
    ) -> "tuple[Optional[ModuleContext], Optional[Finding]]":
        try:
            stat = os.stat(filename)
            stat_key = (stat.st_mtime_ns, stat.st_size)
            cached = self._entries.get(filename)
            if cached is not None and cached[0] == stat_key:
                return cached[1], cached[2]
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            # Unreadable files are reported fresh each run, never cached.
            return None, Finding(
                path=filename,
                line=1,
                col=1,
                rule_id=PARSE_ERROR_RULE,
                message=f"cannot read file: {exc}",
            )
        ctx, parse_error = _parse_module(source, filename)
        self._entries[filename] = (stat_key, ctx, parse_error)
        return ctx, parse_error

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide cache instance (tests may :meth:`~_AstCache.clear` it).
AST_CACHE = _AstCache()


def _module_findings(ctx: ModuleContext, config: LintConfig) -> list[Finding]:
    """Run the per-module rules over one parsed module."""
    findings: list[Finding] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        if config.rule_exempt(rule.rule_id, ctx.posix_path):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.is_suppressed(finding.line, finding.rule_id):
                continue
            findings.append(finding)
    return findings


def _program_findings(
    contexts: Sequence[ModuleContext], config: LintConfig
) -> list[Finding]:
    """Build the program index and run the whole-program rules."""
    rules = [
        rule for rule in all_program_rules() if config.rule_enabled(rule.rule_id)
    ]
    wants_inventory = config.stream_inventory_path is not None
    if not rules and not wants_inventory:
        return []
    index = ProgramIndex.build(contexts)
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(index):
            info = index.by_path.get(finding.path)
            posix_path = (
                info.ctx.posix_path
                if info
                else finding.path.replace(os.sep, "/")
            )
            if config.rule_exempt(finding.rule_id, posix_path):
                continue
            if info and info.ctx.suppressions.is_suppressed(
                finding.line, finding.rule_id
            ):
                continue
            findings.append(finding)
    if wants_inventory:
        inventory = build_stream_inventory(index)
        with open(config.stream_inventory_path, "w", encoding="utf-8") as handle:
            json.dump(inventory, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return findings


def lint_source(
    source: str,
    path: str = "<memory>",
    config: Optional[LintConfig] = None,
) -> list[Finding]:
    """Lint one module given as text (the unit-test entry point).

    The whole-program rules run over a single-module index, so R003 and
    the opaque-name arm of D005 fire here too; cross-module collisions
    (D005) and cross-module reachability (D006) need :func:`lint_paths`.
    """
    config = config or LintConfig()
    ctx, parse_error = _parse_module(source, path)
    if parse_error is not None:
        return [parse_error]
    assert ctx is not None
    findings = _module_findings(ctx, config)
    findings.extend(_program_findings([ctx], config))
    return sorted(findings)


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    config = config or LintConfig()
    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    for filename in iter_python_files(paths, config.exclude_dirs):
        ctx, parse_error = AST_CACHE.load(filename)
        if parse_error is not None:
            findings.append(parse_error)
            continue
        assert ctx is not None
        contexts.append(ctx)
        findings.extend(_module_findings(ctx, config))
    findings.extend(_program_findings(contexts, config))
    return sorted(findings)
