"""The analysis driver: file discovery, parsing and rule execution."""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.rules import all_rules
from repro.lint.rules.base import ModuleContext


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: list[str] = []
    known: set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            key = os.path.normpath(str(candidate))
            if key not in known:
                known.add(key)
                seen.append(key)
    return iter(seen)


def lint_source(
    source: str,
    path: str = "<memory>",
    config: Optional[LintConfig] = None,
) -> list[Finding]:
    """Lint one module given as text (the unit-test entry point)."""
    config = config or LintConfig()
    posix_path = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule_id=PARSE_ERROR_RULE,
                message=f"cannot parse module: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, posix_path=posix_path, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        if config.rule_exempt(rule.rule_id, posix_path):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.is_suppressed(finding.line, finding.rule_id):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    config = config or LintConfig()
    findings: list[Finding] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                Finding(
                    path=filename,
                    line=1,
                    col=1,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, path=filename, config=config))
    return sorted(findings)
