"""Rule base class and the per-module analysis context."""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.findings import Finding
from repro.lint.suppress import SuppressionIndex


class ModuleContext:
    """Everything a rule needs to analyze one parsed module."""

    def __init__(self, path: str, posix_path: str, source: str, tree: ast.Module):
        self.path = path
        #: Normalized forward-slash path used for exemption matching.
        self.posix_path = posix_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions = SuppressionIndex(self.lines)
        #: ``import x.y as z`` -> {"z": "x.y"}
        self.module_aliases: dict[str, str] = {}
        #: ``from x.y import f as g`` -> {"g": "x.y.f"}
        self.from_imports: dict[str, str] = {}
        self._collect_imports()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ------------------------------------------------------------------

    @staticmethod
    def dotted_parts(node: ast.AST) -> Optional[list[str]]:
        """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return parts

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a name chain through the module's imports.

        ``t.monotonic`` under ``import time as t`` resolves to
        ``"time.monotonic"``; ``datetime.now`` under
        ``from datetime import datetime`` resolves to
        ``"datetime.datetime.now"``.  Locally defined names resolve to
        themselves, so rules match on fully qualified stdlib names only.
        """
        parts = self.dotted_parts(node)
        if not parts:
            return None
        head, rest = parts[0], parts[1:]
        if head in self.from_imports:
            head = self.from_imports[head]
        elif head in self.module_aliases:
            head = self.module_aliases[head]
        return ".".join([head, *rest])


class Rule:
    """One static check.  Subclasses set the id/description and implement
    :meth:`check` to yield findings for a module."""

    rule_id: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )
