"""Simulation-correctness rules R001/R004: leaked paired acquisitions.

R001: a :class:`repro.sim.resources.Resource` slot obtained with
``request()`` must be returned with ``release()`` (or withdrawn with
``cancel()``) in the same function, or the simulated server loses capacity
forever — a leak that silently turns a throughput experiment into a
starvation experiment.

R004: a trace span opened with ``open_span()`` must reach ``close_span()``
in the same function (or escape the scope deliberately), or it never
closes — the lifecycle aggregator then silently drops the packet and the
Perfetto export loses the interval.  The classic offender is a spawned
generator that opens a span and gets interrupted before the close.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import ModuleContext, Rule


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_request_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "request"
        and not node.args
        and not node.keywords
    )


@register
class ResourceLeakRule(Rule):
    """``request()`` without a matching ``release``/``cancel`` in scope."""

    rule_id = "R001"
    description = (
        "sim resource request() without a matching release()/cancel() in "
        "the same function; the slot leaks and capacity shrinks forever"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        requests: dict[str, ast.AST] = {}
        released: set[str] = set()
        escaped: set[str] = set()
        for node in _own_nodes(func):
            if isinstance(node, ast.Assign) and _is_request_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        requests[target.id] = node.value
                    else:
                        # Stored on an object: lifetime exceeds this scope.
                        pass
            elif isinstance(node, ast.Expr) and _is_request_call(node.value):
                yield self.finding(
                    ctx,
                    node.value,
                    "request() result discarded; the granted slot can "
                    "never be released",
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr == "release":
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            released.add(arg.id)
                elif node.func.attr == "cancel" and isinstance(
                    node.func.value, ast.Name
                ):
                    released.add(node.func.value.id)
                else:
                    # Passed to another call: treat as handed off.
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            escaped.add(arg.id)
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                escaped.add(node.value.id)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Name
            ):
                escaped.add(node.value.id)
        for name, call in requests.items():
            if name in released or name in escaped:
                continue
            yield self.finding(
                ctx,
                call,
                f"slot {name!r} from request() is never released or "
                "cancelled in this function",
            )


def _is_open_span_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "open_span"
    )


@register
class SpanLeakRule(Rule):
    """``open_span()`` without a matching ``close_span()`` in scope."""

    rule_id = "R004"
    description = (
        "tracer open_span() without a matching close_span() in the same "
        "function; the span never closes and the packet lifecycle is lost"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        opened: dict[str, ast.AST] = {}
        closed: set[str] = set()
        escaped: set[str] = set()
        for node in _own_nodes(func):
            if isinstance(node, ast.Assign) and _is_open_span_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        opened[target.id] = node.value
                    else:
                        # Stored on an object: lifetime exceeds this scope.
                        pass
            elif isinstance(node, ast.Expr) and _is_open_span_call(node.value):
                yield self.finding(
                    ctx,
                    node.value,
                    "open_span() result discarded; the span can never be "
                    "closed (use record_span() for a completed interval)",
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr == "close_span":
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            closed.add(arg.id)
                else:
                    # Passed to another call: treat as handed off.
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            escaped.add(arg.id)
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                escaped.add(node.value.id)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Name
            ):
                escaped.add(node.value.id)
        for name, call in opened.items():
            if name in closed or name in escaped:
                continue
            yield self.finding(
                ctx,
                call,
                f"span {name!r} from open_span() is never passed to "
                "close_span() in this function",
            )
