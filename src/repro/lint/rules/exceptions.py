"""Relayer-robustness rule R002: silently swallowed RPC errors.

An ``except RpcError: pass``-style handler hides a transport failure from
both the operator (nothing logged) and the analysis layer (error counts
undercount real failures).  The §V lesson is that silent failure modes are
exactly the ones that cost packets; every caught RPC error must be logged,
re-raised, or otherwise acted on.

A handler is flagged when it catches an RPC error class
(:mod:`repro.errors`) and its body performs no call and no raise — i.e.
nothing observable happens: ``pass``, ``continue``, a bare ``return`` or a
plain assignment all count as swallowing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import ModuleContext, Rule

#: The transport-error hierarchy of repro.errors.  Matching on class names
#: (after import resolution) keeps the rule purely static.
RPC_ERROR_NAMES = frozenset(
    {
        "RpcError",
        "RpcTimeoutError",
        "RpcOverloadedError",
        "NodeUnavailableError",
        "WebSocketFrameTooLargeError",
    }
)


def _caught_types(handler: ast.ExceptHandler) -> list[ast.AST]:
    if handler.type is None:
        return []
    if isinstance(handler.type, ast.Tuple):
        return list(handler.type.elts)
    return [handler.type]


@register
class SwallowedRpcErrorRule(Rule):
    """``except RpcError`` whose body neither calls, raises nor logs."""

    rule_id = "R002"
    description = (
        "RPC error caught and silently swallowed (no call, no raise); "
        "log the failure or re-raise so error accounting stays truthful"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._catches_rpc_error(ctx, node):
                continue
            acts = any(
                isinstance(inner, (ast.Call, ast.Raise))
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if not acts:
                caught = ", ".join(
                    ctx.resolve(t) or "<?>" for t in _caught_types(node)
                )
                yield self.finding(
                    ctx,
                    node,
                    f"handler for {caught} swallows the error: no call, "
                    "no raise — log it or re-raise",
                )

    def _catches_rpc_error(
        self, ctx: ModuleContext, handler: ast.ExceptHandler
    ) -> bool:
        for type_node in _caught_types(handler):
            resolved = ctx.resolve(type_node)
            if resolved is None:
                continue
            if resolved.split(".")[-1] in RPC_ERROR_NAMES:
                return True
        return False
