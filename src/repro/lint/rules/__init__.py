"""Rule registry.

Rules self-register with the :func:`register` decorator; importing this
package loads the built-in rule modules and therefore populates
:data:`REGISTRY`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.rules.base import Rule

#: rule id -> rule instance, in registration (= documentation) order.
REGISTRY: "dict[str, Rule]" = {}


def register(rule_cls: "Type[Rule]") -> "Type[Rule]":
    """Class decorator: instantiate and index a rule by its id."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> "list[Rule]":
    return list(REGISTRY.values())


# Built-in rule modules (import order fixes documentation order).
from repro.lint.rules import determinism as _determinism  # noqa: E402,F401
from repro.lint.rules import resources as _resources  # noqa: E402,F401
from repro.lint.rules import exceptions as _exceptions  # noqa: E402,F401
