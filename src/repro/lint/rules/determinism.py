"""Determinism rules D001-D004.

The discrete-event simulation is only trustworthy if the same seed replays
the same event schedule.  These rules mechanically forbid the classic ways
Python code goes nondeterministic: wall clocks, unmanaged RNGs, set
iteration order and float-equality on simulated timestamps.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import register
from repro.lint.rules.base import ModuleContext, Rule

# ----------------------------------------------------------------------
# D001 — wall-clock reads
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """Simulated components must read ``env.now``, never the host clock."""

    rule_id = "D001"
    description = (
        "wall-clock read (time.time/monotonic/perf_counter, datetime.now); "
        "use the simulation clock (env.now) instead"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {resolved}() breaks replayability; "
                    "use the simulation clock (Environment.now)",
                )


# ----------------------------------------------------------------------
# D002 — RNG construction outside the registry
# ----------------------------------------------------------------------

_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.seed",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.getrandbits",
        "random.randbytes",
    }
)


@register
class RngConstructionRule(Rule):
    """RNGs come from ``sim/rng.py``'s RngRegistry named streams."""

    rule_id = "D002"
    description = (
        "unseeded / hard-coded-seed RNG construction or global-random use; "
        "draw a named stream from sim.rng.RngRegistry instead"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() uses the shared module-global RNG, whose "
                    "state any import can perturb; use an RngRegistry stream",
                )
            elif resolved == "random.SystemRandom":
                yield self.finding(
                    ctx,
                    node,
                    "random.SystemRandom() draws OS entropy and can never "
                    "be replayed; use an RngRegistry stream",
                )
            elif resolved == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "random.Random() without a seed is seeded from the "
                        "OS; derive the stream from RngRegistry",
                    )
                elif node.args and isinstance(node.args[0], ast.Constant):
                    yield self.finding(
                        ctx,
                        node,
                        "random.Random with a hard-coded seed bypasses the "
                        "experiment seed; derive the stream from RngRegistry",
                    )


# ----------------------------------------------------------------------
# D003 — iteration over sets (and raw dict.keys()) in ordered sinks
# ----------------------------------------------------------------------

_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_ORDERED_SINK_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _annotation_base(node: ast.AST) -> str:
    """The head identifier of an annotation (``set[int]`` -> ``set``)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the text before any subscript.
        return node.value.split("[", 1)[0].strip()
    return ""


class _SetNames:
    """Flow-insensitive record of names/attributes known to hold sets."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.self_attrs: set[str] = set()

    def add_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self.self_attrs.add(target.attr)


@register
class SetIterationRule(Rule):
    """Set iteration order depends on hash seeding; sort before iterating."""

    rule_id = "D003"
    description = (
        "iteration over a set (or raw dict.keys()) in an order-sensitive "
        "position; wrap the iterable in sorted(...)"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        known = self._collect_set_names(ctx.tree)
        yield from self._scan(ctx, ctx.tree, known)

    # -- what counts as a set expression --------------------------------

    def _collect_set_names(self, tree: ast.Module) -> _SetNames:
        known = _SetNames()
        # Two passes so ``a = some_set`` chains settle regardless of order.
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    if self._is_set_expr(node.value, known):
                        for target in node.targets:
                            known.add_target(target)
                elif isinstance(node, ast.AnnAssign):
                    if _annotation_base(node.annotation) in _SET_ANNOTATIONS or (
                        node.value is not None
                        and self._is_set_expr(node.value, known)
                    ):
                        known.add_target(node.target)
                elif isinstance(node, ast.arg):
                    if node.annotation is not None and (
                        _annotation_base(node.annotation) in _SET_ANNOTATIONS
                    ):
                        known.names.add(node.arg)
        return known

    def _is_set_expr(self, node: ast.AST, known: _SetNames) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in known.names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in known.self_attrs
            )
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in _SET_RETURNING_METHODS
            ):
                return self._is_set_expr(node.func.value, known)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, known) or self._is_set_expr(
                node.right, known
            )
        return False

    @staticmethod
    def _is_raw_keys_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        )

    # -- order-sensitive sinks ------------------------------------------

    def _scan(
        self, ctx: ModuleContext, tree: ast.Module, known: _SetNames
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iterable(ctx, node.iter, "for-loop", known)
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    yield from self._check_iterable(
                        ctx, gen.iter, "list comprehension", known
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDERED_SINK_CALLS and node.args:
                    yield from self._check_iterable(
                        ctx, node.args[0], f"{node.func.id}()", known
                    )
            elif isinstance(node, ast.Starred):
                yield from self._check_iterable(
                    ctx, node.value, "star-unpacking", known
                )

    def _check_iterable(
        self, ctx: ModuleContext, iterable: ast.AST, sink: str, known: _SetNames
    ) -> Iterator[Finding]:
        if self._is_set_expr(iterable, known):
            yield self.finding(
                ctx,
                iterable,
                f"set iterated by a {sink}: set order follows the hash "
                "seed, not the simulation; wrap in sorted(...)",
            )
        elif self._is_raw_keys_call(iterable):
            yield self.finding(
                ctx,
                iterable,
                f"dict.keys() iterated by a {sink}: make the intended "
                "order explicit — iterate the dict or wrap in sorted(...)",
            )


# ----------------------------------------------------------------------
# D004 — float equality on simulated timestamps
# ----------------------------------------------------------------------

_TIME_WORDS = frozenset({"time", "now", "timestamp", "ts", "deadline"})


def _identifier_words(name: str) -> set[str]:
    return {w for w in name.lower().split("_") if w}


def _is_time_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return bool(_identifier_words(node.attr) & _TIME_WORDS)
    if isinstance(node, ast.Name):
        return bool(_identifier_words(node.id) & _TIME_WORDS)
    return False


@register
class TimestampEqualityRule(Rule):
    """Simulated timestamps are floats; ``==`` on them is accumulation-
    order dependent.  Compare with a tolerance or restructure."""

    rule_id = "D004"
    description = (
        "float equality comparison on a simulated timestamp; use an "
        "ordering comparison, a tolerance, or an Optional sentinel"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and o.value is None for o in operands
            ):
                continue  # `x == None` is an identity bug, not a float one
            if any(_is_time_like(o) for o in operands):
                yield self.finding(
                    ctx,
                    node,
                    "equality on a simulated timestamp compares floats "
                    "bit-for-bit; use <=/>=, a tolerance, or None sentinels",
                )
