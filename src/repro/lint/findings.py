"""Lint findings: the analyzer's output records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


#: Rule id used for files the analyzer cannot parse.
PARSE_ERROR_RULE = "E001"
