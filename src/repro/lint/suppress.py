"""Inline suppression comments.

Two forms, mirroring the usual linter conventions:

* ``# repro-lint: disable=D003`` on the offending line suppresses the
  listed rules (comma-separated) for that line only;
* ``# repro-lint: disable-file=D003`` anywhere in the file suppresses the
  listed rules for the whole file.

``all`` (or ``*``) may be used instead of a rule list to suppress every
rule.  Suppressions are deliberately *visible* in the diff: a reviewer can
grep ``repro-lint:`` to audit every waived determinism finding.
"""

from __future__ import annotations

import re
from typing import Iterable

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>(?:[A-Za-z][A-Za-z0-9_]*|\*)(?:\s*,\s*(?:[A-Za-z][A-Za-z0-9_]*|\*))*)"
)

#: Sentinel meaning "every rule".
ALL_RULES = "*"


def _parse_rule_list(raw: str) -> frozenset[str]:
    rules = {part.strip() for part in raw.split(",") if part.strip()}
    if ALL_RULES in rules or any(r.lower() == "all" for r in rules):
        return frozenset({ALL_RULES})
    return frozenset(rules)


class SuppressionIndex:
    """Per-file map of suppressed rules, built from the source lines."""

    def __init__(self, source_lines: Iterable[str]):
        self.by_line: dict[int, frozenset[str]] = {}
        self.file_wide: frozenset[str] = frozenset()
        for lineno, text in enumerate(source_lines, start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = _parse_rule_list(match.group("rules"))
            if match.group("scope") == "disable-file":
                self.file_wide = self.file_wide | rules
            else:
                self.by_line[lineno] = self.by_line.get(lineno, frozenset()) | rules

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        for scope in (self.file_wide, self.by_line.get(line, frozenset())):
            if ALL_RULES in scope or rule_id in scope:
                return True
        return False
