"""``python -m repro.lint`` — run the determinism analyzer from the shell.

Exit status: 0 when no findings, 1 when any finding survives suppression
and exemption filtering, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths
from repro.lint.program import PROGRAM_REGISTRY
from repro.lint.reporters import REPORTERS
from repro.lint.rules import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and simulation-correctness analyzer "
            "for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--schedcheck",
        metavar="SCENARIO",
        default=None,
        help=(
            "dynamic mode: run SCENARIO under both event-heap tie-break "
            "policies and report any divergence (a scheduling race) "
            "instead of running the static rules"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="experiment seed for --schedcheck scenarios (default 7)",
    )
    parser.add_argument(
        "--stream-inventory",
        metavar="FILE",
        default=None,
        help=(
            "write the RNG stream-name inventory (JSON) produced by the "
            "whole-program phase to FILE"
        ),
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in REGISTRY.items():
            print(f"{rule_id}  {rule.description}")
        for rule_id, rule in PROGRAM_REGISTRY.items():
            print(f"{rule_id}  [whole-program] {rule.description}")
        return 0

    if args.schedcheck is not None:
        from repro.lint.schedcheck import SCENARIOS, check_scenario

        if args.schedcheck not in SCENARIOS:
            parser.error(
                f"unknown schedcheck scenario {args.schedcheck!r} "
                f"(known: {', '.join(sorted(SCENARIOS))})"
            )
        result = check_scenario(args.schedcheck, seed=args.seed)
        print(result.summary())
        return 0 if result.clean else 1

    select = None
    if args.rules:
        select = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = select - set(REGISTRY) - set(PROGRAM_REGISTRY)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    config = LintConfig(
        select=select, stream_inventory_path=args.stream_inventory
    )

    findings = lint_paths(args.paths, config)
    print(REPORTERS[args.format](findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
