"""``python -m repro.lint`` — run the determinism analyzer from the shell.

Exit status: 0 when no findings, 1 when any finding survives suppression
and exemption filtering (or a dynamic check reports a divergence), 2 on
usage errors *and* analyzer crashes — so CI can tell "the tree is dirty"
(1) from "the analyzer itself broke" (2).
"""

from __future__ import annotations

import argparse
import sys
import traceback
from fnmatch import fnmatchcase
from typing import Optional

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths
from repro.lint.program import PROGRAM_REGISTRY
from repro.lint.reporters import REPORTERS
from repro.lint.rules import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and simulation-correctness analyzer "
            "for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="GLOB",
        help=(
            "rule-id glob to run (repeatable, comma-separable); e.g. "
            "'--select P*' runs only the performance tier, '--select D*,R*' "
            "the determinism and resource tiers"
        ),
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="GLOB",
        help=(
            "rule-id glob to skip after selection (repeatable, "
            "comma-separable); e.g. '--ignore P00[45]'"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--schedcheck",
        metavar="SCENARIO",
        default=None,
        help=(
            "dynamic mode: run SCENARIO under both event-heap tie-break "
            "policies and report any divergence (a scheduling race) "
            "instead of running the static rules"
        ),
    )
    parser.add_argument(
        "--alloccheck",
        metavar="SCENARIO",
        default=None,
        help=(
            "dynamic mode: run SCENARIO under tracemalloc and report "
            "allocations per simulated event by top call site, diffed "
            "against the pinned budget file (ALLOC_BUDGET.json)"
        ),
    )
    parser.add_argument(
        "--alloc-budget",
        metavar="FILE",
        default=None,
        help=(
            "budget file for --alloccheck (default: ALLOC_BUDGET.json "
            "next to the repo root)"
        ),
    )
    parser.add_argument(
        "--write-alloc-budget",
        action="store_true",
        help=(
            "re-pin the --alloccheck budget file from this run's "
            "measurements instead of diffing against it"
        ),
    )
    parser.add_argument(
        "--stallcheck",
        metavar="SCENARIO",
        default=None,
        help=(
            "dynamic mode: run SCENARIO under the liveness monitor, tear "
            "the testbed down, and report deadlocks, livelocks, leaked "
            "waiters and store-backlog regressions against the pinned "
            "budget file (STALL_BUDGET.json)"
        ),
    )
    parser.add_argument(
        "--stall-budget",
        metavar="FILE",
        default=None,
        help=(
            "budget file for --stallcheck (default: STALL_BUDGET.json "
            "next to the repo root)"
        ),
    )
    parser.add_argument(
        "--write-stall-budget",
        action="store_true",
        help=(
            "re-pin this scenario's entry in the --stallcheck budget file "
            "from this run's high-water marks instead of diffing"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help=(
            "experiment seed for --schedcheck/--alloccheck/--stallcheck "
            "scenarios (default 7)"
        ),
    )
    parser.add_argument(
        "--stream-inventory",
        metavar="FILE",
        default=None,
        help=(
            "write the RNG stream-name inventory (JSON) produced by the "
            "whole-program phase to FILE"
        ),
    )
    return parser


def _parse_globs(
    parser: argparse.ArgumentParser, values: Optional[list[str]], flag: str
) -> tuple[str, ...]:
    """Flatten repeatable comma-separable glob flags and typo-check them."""
    if not values:
        return ()
    globs = tuple(
        g.strip() for chunk in values for g in chunk.split(",") if g.strip()
    )
    known = list(REGISTRY) + list(PROGRAM_REGISTRY)
    for pattern in globs:
        if not any(fnmatchcase(rule_id, pattern) for rule_id in known):
            parser.error(f"{flag} glob {pattern!r} matches no registered rule")
    return globs


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in REGISTRY.items():
            print(f"{rule_id}  {rule.description}")
        for rule_id, rule in PROGRAM_REGISTRY.items():
            print(f"{rule_id}  [whole-program] {rule.description}")
        return 0

    if args.schedcheck is not None:
        from repro.lint.schedcheck import SCENARIOS, check_scenario

        if args.schedcheck not in SCENARIOS:
            parser.error(
                f"unknown schedcheck scenario {args.schedcheck!r} "
                f"(known: {', '.join(sorted(SCENARIOS))})"
            )
        try:
            result = check_scenario(args.schedcheck, seed=args.seed)
        except Exception:
            traceback.print_exc()
            print("schedcheck crashed (not a divergence)", file=sys.stderr)
            return 2
        print(result.summary())
        return 0 if result.clean else 1

    if args.alloccheck is not None:
        from repro.lint.alloccheck import SCENARIOS as ALLOC_SCENARIOS
        from repro.lint.alloccheck import check_scenario as alloc_check

        if args.alloccheck not in ALLOC_SCENARIOS:
            parser.error(
                f"unknown alloccheck scenario {args.alloccheck!r} "
                f"(known: {', '.join(sorted(ALLOC_SCENARIOS))})"
            )
        try:
            result = alloc_check(
                args.alloccheck,
                seed=args.seed,
                budget_path=args.alloc_budget,
                write_budget=args.write_alloc_budget,
            )
        except Exception:
            traceback.print_exc()
            print("alloccheck crashed (not a regression)", file=sys.stderr)
            return 2
        print(result.summary())
        return 0 if result.clean else 1

    if args.stallcheck is not None:
        from repro.lint.stallcheck import SCENARIOS as STALL_SCENARIOS
        from repro.lint.stallcheck import check_scenario as stall_check

        if args.stallcheck not in STALL_SCENARIOS:
            parser.error(
                f"unknown stallcheck scenario {args.stallcheck!r} "
                f"(known: {', '.join(sorted(STALL_SCENARIOS))})"
            )
        try:
            result = stall_check(
                args.stallcheck,
                seed=args.seed,
                budget_path=args.stall_budget,
                write_budget=args.write_stall_budget,
            )
        except Exception:
            traceback.print_exc()
            print("stallcheck crashed (not a stall)", file=sys.stderr)
            return 2
        print(result.summary())
        return 0 if result.clean else 1

    select = None
    if args.rules:
        select = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = select - set(REGISTRY) - set(PROGRAM_REGISTRY)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    config = LintConfig(
        select=select,
        select_globs=_parse_globs(parser, args.select, "--select"),
        ignore_globs=_parse_globs(parser, args.ignore, "--ignore"),
        stream_inventory_path=args.stream_inventory,
    )

    try:
        findings = lint_paths(args.paths, config)
        report = REPORTERS[args.format](findings)
    except Exception:
        traceback.print_exc()
        print("analyzer crashed (findings, if any, are incomplete)", file=sys.stderr)
        return 2
    print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
