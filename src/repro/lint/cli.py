"""``python -m repro.lint`` — run the determinism analyzer from the shell.

Exit status: 0 when no findings, 1 when any finding survives suppression
and exemption filtering, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths
from repro.lint.reporters import REPORTERS
from repro.lint.rules import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and simulation-correctness analyzer "
            "for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in REGISTRY.items():
            print(f"{rule_id}  {rule.description}")
        return 0

    select = None
    if args.rules:
        select = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = select - set(REGISTRY)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    config = LintConfig.with_rules(select)

    findings = lint_paths(args.paths, config)
    print(REPORTERS[args.format](findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
