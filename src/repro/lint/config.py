"""Analyzer configuration: rule selection and per-rule path exemptions."""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Mapping, Optional

#: Files that are structurally allowed to violate a rule.  Matched as
#: posix-path suffixes so the config is independent of the checkout root.
DEFAULT_EXEMPT_PATHS: Mapping[str, tuple[str, ...]] = {
    # parallel/hostclock.py is the one blessed host wall-clock reader:
    # the parallel executor measures host-side cost there, and nothing
    # host-timed ever feeds back into simulation state.
    "D001": ("parallel/hostclock.py",),
    # sim/rng.py is the one blessed constructor of random.Random instances:
    # every other module must go through its RngRegistry named streams.
    "D002": ("sim/rng.py",),
    # resources.py implements request()/release() themselves.
    "R001": ("sim/resources.py",),
    # sim/rng.py implements stream()/keyed()/derive_seed: the name flows
    # through as a parameter, which is opaque by construction.
    "D005": ("sim/rng.py",),
}

#: Directory names skipped while expanding directory arguments.  The lint
#: fixtures are deliberate rule violations; they are still analyzable by
#: passing their directory (or files) explicitly.
DEFAULT_EXCLUDE_DIRS: tuple[str, ...] = ("lint_fixtures",)


@dataclass(frozen=True)
class LintConfig:
    """What to check and where exceptions are allowed."""

    #: Rule ids to run; ``None`` means every registered rule (both the
    #: per-module registry and the whole-program registry).
    select: Optional[frozenset[str]] = None
    #: Rule-id glob patterns (``fnmatch`` style, e.g. ``P*`` or ``D00?``);
    #: when non-empty, only rules matching at least one pattern run.  This
    #: is how the CLI's ``--select`` runs one tier (D/R/P) in isolation.
    select_globs: tuple[str, ...] = ()
    #: Rule-id glob patterns removed *after* selection (CLI ``--ignore``).
    ignore_globs: tuple[str, ...] = ()
    #: rule id -> posix path suffixes exempt from that rule.
    exempt_paths: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPT_PATHS)
    )
    #: Directory names pruned while expanding directory arguments.
    exclude_dirs: tuple[str, ...] = DEFAULT_EXCLUDE_DIRS
    #: When set, ``lint_paths`` writes the RNG stream-name inventory
    #: artifact (JSON) here as a side effect of the whole-program phase.
    stream_inventory_path: Optional[str] = None

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select is not None and rule_id not in self.select:
            return False
        if self.select_globs and not any(
            fnmatchcase(rule_id, pattern) for pattern in self.select_globs
        ):
            return False
        return not any(
            fnmatchcase(rule_id, pattern) for pattern in self.ignore_globs
        )

    def rule_exempt(self, rule_id: str, posix_path: str) -> bool:
        """True when ``posix_path`` is structurally exempt from the rule."""
        for suffix in self.exempt_paths.get(rule_id, ()):
            if posix_path.endswith(suffix):
                return True
        return False

    @classmethod
    def with_rules(cls, rule_ids: Optional[frozenset[str]]) -> "LintConfig":
        return cls(select=rule_ids)
