"""Dynamic liveness sanitizer (lint Tier W's runtime complement).

The static Tier W rules flag wait-graph *patterns* (unguarded waits,
inconsistent lock orders, zero-delay loops); this module watches the
real thing.  A :class:`StallMonitor` hooks the kernel via the
``_STALL_MONITOR`` globals in :mod:`repro.sim.core` and
:mod:`repro.sim.resources`, keeping weak-reference registries of every
process, process group, resource and store the run creates — each
tagged with the source line that created it.  After the scenario runs,
the whole testbed is torn down (``engine.shutdown()``) and the monitor
checks that nothing survived:

* **deadlock** — the event heap drained while registered processes are
  still alive.  The report dumps the runtime *wait graph*: each stuck
  process's name, the source line its generator is suspended at, and a
  description of the event it waits on (which resource/store, how full).
* **livelock** — more than ``livelock_threshold`` events processed at a
  single simulated instant.  A zero-delay self-rescheduling loop makes
  time stop advancing; the monitor raises :class:`StallError` from
  inside ``env.step`` with the offending instant.
* **residue** — after teardown: still-granted resource slots, requests
  still queued, stores with live putters or waiting getters, process
  groups with live members, and WebSocket subscriptions still
  registered on any node.
* **backlog** — the high-water mark of every store (by creation site)
  is diffed against the pinned budget file (``STALL_BUDGET.json`` at
  the repo root), so an unbounded queue growth regression fails tier-1
  the same way a lint finding does.

The teardown path is *only* exercised here: the normal experiment
runner never calls ``engine.shutdown()``, keeping its event accounting
byte-identical to the pinned golden run.
"""

from __future__ import annotations

import json
import sys
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.lint.alloccheck import _short_path

#: Default budget file, pinned at the repo root (src-layout: this file is
#: ``<root>/src/repro/lint/stallcheck.py``).
DEFAULT_BUDGET_PATH = Path(__file__).resolve().parents[3] / "STALL_BUDGET.json"

#: Relative headroom applied when diffing high-water marks, plus a small
#: absolute slack so tiny pinned values (1-2 items) don't false-fail.
DEFAULT_TOLERANCE = 0.25
ABSOLUTE_SLACK = 2

#: Stores whose creation site is *not* in the budget fail only past this
#: floor — a brand-new queue is fine until it grows suspiciously deep.
UNBUDGETED_FLOOR = 256

#: Default number of same-instant events treated as a livelock.  The
#: busiest pinned scenario (hub4) peaks well under 2k events at one
#: instant; a zero-delay loop blows past any finite threshold.
DEFAULT_LIVELOCK_THRESHOLD = 10_000


class StallError(Exception):
    """Raised by the monitor when simulated time stops advancing."""


def _creation_site() -> str:
    """The first stack frame outside the kernel modules, as ``path:line``."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not filename.endswith(
            ("repro/sim/core.py", "repro/sim/resources.py", "repro/lint/stallcheck.py")
        ):
            return f"{_short_path(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class StallMonitor:
    """Weak-reference registries over every kernel object a run creates.

    Installed via :meth:`activate`; every hook is a single method call
    guarded by an ``is None`` check in the kernel, so unmonitored runs
    pay one branch per site and monitored runs stay allocation-light
    (weak references only — the monitor never keeps anything alive).
    """

    def __init__(self, livelock_threshold: int = DEFAULT_LIVELOCK_THRESHOLD):
        self.livelock_threshold = livelock_threshold
        self.processes: weakref.WeakSet = weakref.WeakSet()
        self.groups: weakref.WeakSet = weakref.WeakSet()
        self.resources: weakref.WeakSet = weakref.WeakSet()
        self.stores: weakref.WeakSet = weakref.WeakSet()
        #: kernel object -> "path:line" that created it.
        self.sites: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        #: store creation site -> max observed ``len(store.items)``.
        self.high_water: dict[str, int] = {}
        self.same_instant_max = 0
        self._last_when: Optional[float] = None
        self._same_instant = 0

    # -- kernel hooks (called from sim.core / sim.resources) ---------------

    def on_process(self, process) -> None:
        self.processes.add(process)
        self.sites[process] = _creation_site()

    def on_group(self, group) -> None:
        self.groups.add(group)
        self.sites[group] = _creation_site()

    def on_resource(self, resource) -> None:
        self.resources.add(resource)
        self.sites[resource] = _creation_site()

    def on_store(self, store) -> None:
        self.stores.add(store)
        self.sites[store] = _creation_site()

    def on_store_put(self, store) -> None:
        site = self.sites.get(store, "<unknown>")
        depth = len(store.items)
        # Record every put site, even at depth 0 (a waiting consumer
        # drained it synchronously) — the budget then pins the site.
        if depth > self.high_water.get(site, -1):
            self.high_water[site] = depth

    def on_step(self, when: float) -> None:
        if when == self._last_when:
            self._same_instant += 1
        else:
            self._last_when = when
            self._same_instant = 1
        if self._same_instant > self.same_instant_max:
            self.same_instant_max = self._same_instant
        if self._same_instant > self.livelock_threshold:
            raise StallError(
                f"livelock: {self._same_instant} events processed at "
                f"t={when} without time advancing (threshold "
                f"{self.livelock_threshold}); a zero-delay loop is "
                "rescheduling itself"
            )

    # -- activation ---------------------------------------------------------

    def activate(self):
        """Context manager installing this monitor into the kernel."""
        return _Activation(self)

    # -- post-run inspection ------------------------------------------------

    def live_processes(self) -> list:
        return [p for p in self.processes if p.is_alive]

    def wait_graph(self) -> list[str]:
        """One line per live process: name, suspension site, waited event."""
        lines = []
        for process in sorted(self.live_processes(), key=lambda p: p.name):
            frame = getattr(process._generator, "gi_frame", None)
            if frame is not None:
                at = f"{_short_path(frame.f_code.co_filename)}:{frame.f_lineno}"
            else:
                at = "<no frame>"
            waiting = self._describe_event(process._waiting_on)
            lines.append(
                f"{process.name or '<unnamed>'} "
                f"(spawned at {self.sites.get(process, '<unknown>')}) "
                f"suspended at {at}, waiting on {waiting}"
            )
        return lines

    def _describe_event(self, event) -> str:
        from repro.sim.core import Process, Timeout
        from repro.sim.resources import Request, StoreGet, StorePut

        if event is None:
            return "nothing (never resumed)"
        if isinstance(event, Request):
            res = event.resource
            return (
                f"Request on Resource@{self.sites.get(res, '<unknown>')} "
                f"(in use {res.count}/{res.capacity}, "
                f"queue {res.queue_length})"
            )
        if isinstance(event, StoreGet):
            store = event.store
            return (
                f"StoreGet on Store@{self.sites.get(store, '<unknown>')} "
                f"({len(store.items)} item(s) buffered)"
            )
        if isinstance(event, StorePut):
            store = event.store
            return (
                f"StorePut on full Store@{self.sites.get(store, '<unknown>')} "
                f"({len(store.items)}/{store.capacity})"
            )
        if isinstance(event, Process):
            return f"process {event.name!r} to finish"
        if isinstance(event, Timeout):
            return f"Timeout({event.delay}s)"
        return type(event).__name__

    def residue(self) -> list[str]:
        """Leak findings over every registry (call after teardown)."""
        findings = []
        for resource in self.resources:
            if resource.count > 0:
                findings.append(
                    f"Resource@{self.sites.get(resource, '<unknown>')} still "
                    f"holds {resource.count} granted slot(s) after teardown"
                )
            if resource.queue_length > 0:
                findings.append(
                    f"Resource@{self.sites.get(resource, '<unknown>')} still "
                    f"queues {resource.queue_length} ungranted request(s)"
                )
        for store in self.stores:
            putters = store._live_putters()
            if putters > 0:
                findings.append(
                    f"Store@{self.sites.get(store, '<unknown>')} still has "
                    f"{putters} blocked put(s) after teardown"
                )
            getters = sum(1 for g in store._getters if not g.cancelled)
            if getters > 0:
                findings.append(
                    f"Store@{self.sites.get(store, '<unknown>')} still has "
                    f"{getters} waiting getter(s) after teardown"
                )
        for group in self.groups:
            live = group.live
            if live:
                names = ", ".join(sorted(p.name for p in live))
                findings.append(
                    f"ProcessGroup@{self.sites.get(group, '<unknown>')} still "
                    f"owns {len(live)} live process(es): {names}"
                )
        return sorted(findings)


class _Activation:
    """Installs/uninstalls a monitor into both kernel modules."""

    def __init__(self, monitor: StallMonitor):
        self.monitor = monitor

    def __enter__(self) -> StallMonitor:
        from repro.sim import core, resources

        if core._STALL_MONITOR is not None:
            raise RuntimeError("a StallMonitor is already active")
        core._STALL_MONITOR = self.monitor
        resources._STALL_MONITOR = self.monitor
        return self.monitor

    def __exit__(self, *exc) -> None:
        from repro.sim import core, resources

        core._STALL_MONITOR = None
        resources._STALL_MONITOR = None


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class StallcheckResult:
    """Outcome of one monitored scenario (or toy) run."""

    scenario: str
    seed: int
    events: int = 0
    live: int = 0
    same_instant_max: int = 0
    high_water: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    wait_lines: list[str] = field(default_factory=list)
    budget: Optional[dict] = None
    wrote_budget_to: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        header = (
            f"stallcheck[{self.scenario}]: {self.events} events, "
            f"{len(self.high_water)} store site(s) tracked, "
            f"same-instant peak {self.same_instant_max}"
        )
        lines = [header]
        if self.wrote_budget_to is not None:
            lines.append(f"  pinned stall budget to {self.wrote_budget_to}")
        elif self.clean:
            lines.append(
                "  OK — no deadlock, no livelock, no teardown residue, "
                "all store high-water marks within budget"
            )
        else:
            lines.append(f"  STALL — {len(self.violations)} violation(s):")
            lines += [f"    {v}" for v in self.violations]
            if self.wait_lines:
                lines.append("  runtime wait graph:")
                lines += [f"    {w}" for w in self.wait_lines]
            lines.append(
                "    see DESIGN.md §6 (how to read a stallcheck report); "
                "re-pin high-water budgets with --write-stall-budget only "
                "after auditing the growth"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Budget diffing
# ---------------------------------------------------------------------------


def budget_document(
    result: StallcheckResult, existing: Optional[dict] = None
) -> dict:
    """Merge this run's scenario into the (single) pinned budget file."""
    document = dict(existing) if existing else {}
    document.setdefault("tolerance", DEFAULT_TOLERANCE)
    document.setdefault(
        "note",
        (
            "Gate: each store's measured high-water mark must stay within "
            "pinned * (1 + tolerance) + 2; unpinned sites within "
            f"{UNBUDGETED_FLOOR}.  Pinned by `python -m repro lint "
            "--stallcheck <scenario> --write-stall-budget`; re-pin only "
            "after auditing the growth."
        ),
    )
    scenarios = dict(document.get("scenarios", {}))
    scenarios[result.scenario] = {
        "seed": result.seed,
        "events": result.events,
        "high_water": dict(sorted(result.high_water.items())),
    }
    document["scenarios"] = {k: scenarios[k] for k in sorted(scenarios)}
    return document


def apply_budget(result: StallcheckResult, budget: dict) -> None:
    """Diff the run's high-water marks against the pinned budget."""
    result.budget = budget
    tolerance = float(budget.get("tolerance", DEFAULT_TOLERANCE))
    pinned = budget.get("scenarios", {}).get(result.scenario, {})
    pinned_marks = pinned.get("high_water", {})
    for site, depth in sorted(result.high_water.items()):
        if site in pinned_marks:
            limit = int(pinned_marks[site] * (1.0 + tolerance)) + ABSOLUTE_SLACK
            if depth > limit:
                result.violations.append(
                    f"store backlog regression at {site}: high-water {depth} "
                    f"exceeds pinned {pinned_marks[site]} "
                    f"(+{100 * tolerance:.0f}% +{ABSOLUTE_SLACK} = {limit})"
                )
        elif depth > UNBUDGETED_FLOOR:
            result.violations.append(
                f"unbudgeted store at {site} reached high-water {depth} "
                f"(> floor {UNBUDGETED_FLOOR}); pin it with "
                "--write-stall-budget after auditing"
            )


# ---------------------------------------------------------------------------
# Scenarios + entry points (mirrors repro.lint.alloccheck)
# ---------------------------------------------------------------------------

#: Named scenarios for the CLI / tier-1 gate; the configs are shared with
#: schedcheck (run under the default fifo tie-break).
SCENARIOS: dict[str, Callable] = {}


def _register_scenarios() -> None:
    from repro.lint import schedcheck

    SCENARIOS.update(
        {
            name: (lambda factory: lambda seed: factory("fifo", seed))(factory)
            for name, factory in schedcheck.SCENARIOS.items()
        }
    )


_register_scenarios()


def check_scenario(
    name: str,
    seed: int = 7,
    budget_path: Optional[str] = None,
    write_budget: bool = False,
) -> StallcheckResult:
    """Run a named scenario monitored, tear it down, report every stall."""
    from repro.errors import SimulationError
    from repro.framework.runner import _ExperimentEngine

    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown stallcheck scenario {name!r} (known: {known})")

    monitor = StallMonitor()
    result = StallcheckResult(scenario=name, seed=seed)
    with monitor.activate():
        engine = _ExperimentEngine(factory(seed))
        env = engine.testbed.env
        try:
            engine.run()
        except StallError as exc:
            result.violations.append(str(exc))
        except SimulationError:
            # The heap drained under the orchestrator: a deadlock.
            result.violations.append(
                f"deadlock: event heap drained with "
                f"{len(monitor.live_processes())} process(es) still waiting"
            )
            result.wait_lines = monitor.wait_graph()
        else:
            engine.shutdown()
            stuck = monitor.live_processes()
            if stuck:
                result.violations.append(
                    f"teardown left {len(stuck)} process(es) alive "
                    "(shutdown interrupt did not reach them)"
                )
                result.wait_lines = monitor.wait_graph()
            result.violations += monitor.residue()
            result.violations += _subscription_residue(engine.testbed)
        result.events = env.events_processed
        result.live = len(monitor.live_processes())
        result.same_instant_max = monitor.same_instant_max
        result.high_water = dict(monitor.high_water)

    path = Path(budget_path) if budget_path is not None else DEFAULT_BUDGET_PATH
    if write_budget:
        existing = json.loads(path.read_text()) if path.exists() else None
        document = budget_document(result, existing)
        path.write_text(json.dumps(document, indent=2) + "\n")
        result.wrote_budget_to = str(path)
        return result
    if path.exists():
        apply_budget(result, json.loads(path.read_text()))
    return result


def _subscription_residue(testbed) -> list[str]:
    """WebSocket subscriptions still registered after teardown."""
    findings = []
    for chain in testbed.chains:
        for host, node in sorted(chain.nodes.items()):
            count = len(node.websocket.subscriptions)
            if count:
                findings.append(
                    f"websocket {chain.chain_id}/{host} still has {count} "
                    "registered subscription(s) after teardown"
                )
    return findings


def check_toy(
    name: str,
    build: Callable,
    livelock_threshold: int = DEFAULT_LIVELOCK_THRESHOLD,
) -> StallcheckResult:
    """Run a self-contained toy under the monitor (for tests/examples).

    ``build(env)`` sets up processes on a fresh :class:`Environment`;
    the toy then runs until its heap drains.  No budget is consulted —
    toys report deadlock, livelock and residue only.
    """
    from repro.sim.core import Environment

    monitor = StallMonitor(livelock_threshold=livelock_threshold)
    result = StallcheckResult(scenario=name, seed=0)
    with monitor.activate():
        env = Environment()
        build(env)
        try:
            env.run()
        except StallError as exc:
            result.violations.append(str(exc))
        else:
            stuck = monitor.live_processes()
            if stuck:
                result.violations.append(
                    f"deadlock: event heap drained with {len(stuck)} "
                    "process(es) still waiting"
                )
                result.wait_lines = monitor.wait_graph()
            result.violations += monitor.residue()
        result.events = env.events_processed
        result.live = len(monitor.live_processes())
        result.same_instant_max = monitor.same_instant_max
        result.high_water = dict(monitor.high_water)
    return result
