"""Dynamic allocation sanitizer (lint Tier P's runtime complement).

The static Tier P rules flag *patterns* that allocate per event; this
module measures the real thing: run a scenario under :mod:`tracemalloc`
and report how many traced allocations are still live at the end of the
run, normalised per simulated event, with the top allocating call sites.
The normalised figure is diffed against a pinned budget file
(``ALLOC_BUDGET.json`` at the repo root) so an allocation regression —
a dropped ``__slots__``, a new per-event closure, an unbounded cache on
a hot path — fails tier-1 the same way a lint finding does.

Methodology
-----------

``tracemalloc`` traces every allocation made *after* it starts, so the
measurement covers exactly one scenario execution: testbed construction,
the simulated run, and the report build.  A ``gc.collect()`` before the
final snapshot makes the live set deterministic (cyclic garbage is
collected at a GC-chosen instant otherwise).  Two consequences worth
knowing when reading a report:

* The metric counts *retained* blocks (live at snapshot time), not
  cumulative allocations — per-event garbage that was already freed is
  visible only through the ``peak_kb`` figure.
* Warm ``functools.lru_cache`` memos from earlier runs in the same
  process mean *fewer* new allocations, never more, so a budget pinned
  from a cold process is an upper bound and the check cannot false-fail
  from cache warmth.

The budget gates only ``blocks_per_event`` (with a relative tolerance
recorded in the file); event counts and top sites are informational.
"""

from __future__ import annotations

import gc
import json
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

#: Default budget file, pinned at the repo root (src-layout: this file is
#: ``<root>/src/repro/lint/alloccheck.py``).
DEFAULT_BUDGET_PATH = Path(__file__).resolve().parents[3] / "ALLOC_BUDGET.json"

#: How many call sites a report spells out.
TOP_SITES = 10

#: Relative headroom applied when *pinning* a budget, so identical code
#: re-measured under slightly different GC/cache conditions stays clean.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class AllocSite:
    """One call site's share of the live allocations."""

    path: str
    line: int
    count: int
    size_kb: float

    def __str__(self) -> str:
        return f"{self.path}:{self.line}  blocks={self.count}  kb={self.size_kb:.1f}"


@dataclass
class AlloccheckResult:
    """Outcome of one scenario's allocation measurement."""

    scenario: str
    seed: int
    events: int
    total_blocks: int
    total_kb: float
    peak_kb: float
    blocks_per_event: float
    top_sites: list[AllocSite] = field(default_factory=list)
    #: Budget document the run was diffed against (None when pinning).
    budget: Optional[dict] = None
    violations: list[str] = field(default_factory=list)
    wrote_budget_to: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        header = (
            f"alloccheck[{self.scenario}]: {self.events} events, "
            f"{self.total_blocks} live blocks ({self.total_kb:.0f} kB, "
            f"peak {self.peak_kb:.0f} kB) -> "
            f"{self.blocks_per_event:.2f} blocks/event"
        )
        lines = [header]
        if self.wrote_budget_to is not None:
            lines.append(f"  pinned budget to {self.wrote_budget_to}")
        elif self.clean:
            budget_limit = _budget_limit(self.budget)
            if budget_limit is not None:
                lines.append(
                    f"  OK — within budget ({budget_limit:.2f} blocks/event "
                    "allowed)"
                )
            else:
                lines.append("  OK (no budget file; nothing to diff against)")
        else:
            lines.append(f"  REGRESSION — {len(self.violations)} violation(s):")
            lines += [f"    {v}" for v in self.violations]
            lines.append(
                "    a regression means per-event allocation grew past the "
                "pinned budget (see DESIGN.md §6: how to read an alloccheck "
                "report); re-pin with --write-alloc-budget only after "
                "auditing the growth"
            )
        lines.append("  top call sites by live blocks:")
        lines += [f"    {site}" for site in self.top_sites]
        return "\n".join(lines)


def _budget_limit(budget: Optional[dict]) -> Optional[float]:
    if not budget:
        return None
    try:
        return float(budget["blocks_per_event"]) * (
            1.0 + float(budget.get("tolerance", DEFAULT_TOLERANCE))
        )
    except (KeyError, TypeError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def measure(scenario: str, config, seed: int) -> AlloccheckResult:
    """Run one experiment under tracemalloc and collect allocation stats."""
    from repro.framework.runner import _ExperimentEngine

    gc.collect()
    tracemalloc.start()
    try:
        engine = _ExperimentEngine(config)
        engine.run()
        events = engine.testbed.env.events_processed
        gc.collect()
        snapshot = tracemalloc.take_snapshot()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    stats = snapshot.statistics("lineno")
    total_blocks = sum(s.count for s in stats)
    total_kb = sum(s.size for s in stats) / 1024.0
    ranked = sorted(
        stats,
        key=lambda s: (
            -s.count,
            -s.size,
            s.traceback[0].filename,
            s.traceback[0].lineno,
        ),
    )
    top = [
        AllocSite(
            path=_short_path(s.traceback[0].filename),
            line=s.traceback[0].lineno,
            count=s.count,
            size_kb=s.size / 1024.0,
        )
        for s in ranked[:TOP_SITES]
    ]
    return AlloccheckResult(
        scenario=scenario,
        seed=seed,
        events=events,
        total_blocks=total_blocks,
        total_kb=total_kb,
        peak_kb=peak / 1024.0,
        blocks_per_event=(total_blocks / events) if events else float("inf"),
        top_sites=top,
    )


def _short_path(filename: str) -> str:
    """Shorten an absolute path to its in-repo tail where possible."""
    for marker in ("/src/", "/lib/python"):
        idx = filename.rfind(marker)
        if idx >= 0:
            return filename[idx + len(marker) :]
    return filename


# ---------------------------------------------------------------------------
# Budget diffing
# ---------------------------------------------------------------------------


def budget_document(result: AlloccheckResult) -> dict:
    """The JSON document pinned by ``--write-alloc-budget``."""
    return {
        "scenario": result.scenario,
        "seed": result.seed,
        "events": result.events,
        "blocks_per_event": round(result.blocks_per_event, 2),
        "tolerance": DEFAULT_TOLERANCE,
        "note": (
            "Gate: measured blocks_per_event must stay within "
            "blocks_per_event * (1 + tolerance).  Pinned by "
            "`python -m repro lint --alloccheck <scenario> "
            "--write-alloc-budget`; re-pin only after auditing growth."
        ),
    }


def apply_budget(result: AlloccheckResult, budget: dict) -> None:
    """Populate ``result.violations`` from a pinned budget document."""
    result.budget = budget
    scenario = budget.get("scenario")
    if scenario is not None and scenario != result.scenario:
        result.violations.append(
            f"budget file pins scenario {scenario!r}, ran {result.scenario!r}"
        )
        return
    limit = _budget_limit(budget)
    if limit is None:
        result.violations.append(
            "budget file has no usable blocks_per_event entry"
        )
        return
    if result.blocks_per_event > limit:
        result.violations.append(
            f"blocks/event {result.blocks_per_event:.2f} exceeds budget "
            f"{float(budget['blocks_per_event']):.2f} "
            f"(+{100 * float(budget.get('tolerance', DEFAULT_TOLERANCE)):.0f}% "
            f"tolerance = {limit:.2f})"
        )


# ---------------------------------------------------------------------------
# Scenarios + entry point (mirrors repro.lint.schedcheck)
# ---------------------------------------------------------------------------


def _golden_config(seed: int):
    from repro.framework import ExperimentConfig

    return ExperimentConfig(
        input_rate=20,
        measurement_blocks=4,
        seed=seed,
        drain_seconds=20.0,
    )


#: Named scenarios for the CLI / tier-1 gate.  Each maps a name to a
#: ``seed -> ExperimentConfig`` factory.
SCENARIOS: dict[str, Callable] = {
    "golden": _golden_config,
}


def check_scenario(
    name: str,
    seed: int = 7,
    budget_path: Optional[str] = None,
    write_budget: bool = False,
) -> AlloccheckResult:
    """Measure a named scenario and diff (or pin) its allocation budget."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown alloccheck scenario {name!r} (known: {known})")
    result = measure(name, factory(seed), seed)
    path = Path(budget_path) if budget_path is not None else DEFAULT_BUDGET_PATH
    if write_budget:
        path.write_text(json.dumps(budget_document(result), indent=2) + "\n")
        result.wrote_budget_to = str(path)
        return result
    if path.exists():
        apply_budget(result, json.loads(path.read_text()))
    return result
