"""Cross-module rules D005/D006/R003, built on the program index."""

from __future__ import annotations

import ast
from typing import Any, Iterable, Optional, Type

from repro.lint.findings import Finding
from repro.lint.program.index import ProgramIndex, StreamCall
from repro.lint.rules.determinism import _GLOBAL_RANDOM_FUNCS, _WALL_CLOCK_CALLS

#: rule id -> rule instance, in registration (= documentation) order.
PROGRAM_REGISTRY: "dict[str, ProgramRule]" = {}


def register_program(rule_cls: "Type[ProgramRule]") -> "Type[ProgramRule]":
    """Class decorator: instantiate and index a whole-program rule."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in PROGRAM_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    PROGRAM_REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_program_rules() -> "list[ProgramRule]":
    return list(PROGRAM_REGISTRY.values())


class ProgramRule:
    """One cross-module check over the :class:`ProgramIndex`."""

    rule_id: str = ""
    description: str = ""

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, call: "StreamCall | None", path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path, line=line, col=col, rule_id=self.rule_id, message=message
        )


# ----------------------------------------------------------------------
# D005 — RNG stream-name collisions and opaque stream names
# ----------------------------------------------------------------------


@register_program
class StreamNameCollisionRule(ProgramRule):
    """Each component must own its stream names; silent sharing couples
    the components' draw sequences (and is how draw-assignment races
    start).  Names the analyzer cannot read defeat the inventory."""

    rule_id = "D005"
    description = (
        "RNG stream name claimed by more than one module (silent stream "
        "sharing), or a dynamically-built name that defeats the static "
        "stream inventory"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        sites: dict[str, list[StreamCall]] = {}
        for call in index.stream_calls:
            if call.kind == "opaque":
                yield self.finding(
                    call,
                    call.path,
                    call.line,
                    call.col,
                    f"stream name passed to {call.method}() is not statically "
                    "readable; use a literal or f-string with a literal "
                    "prefix so the stream inventory stays complete",
                )
                continue
            sites.setdefault(call.name or "", []).append(call)
        for name in sorted(sites):
            calls = sites[name]
            modules = sorted({c.module for c in calls})
            if len(modules) < 2:
                continue
            ordered = sorted(calls, key=lambda c: (c.path, c.line, c.col))
            first = ordered[0]
            for call in ordered[1:]:
                if call.module == first.module:
                    continue
                yield self.finding(
                    call,
                    call.path,
                    call.line,
                    call.col,
                    f"stream name {name!r} is also claimed by "
                    f"{first.module} ({first.path}:{first.line}); two "
                    "components sharing one stream couple their draw "
                    "sequences — derive distinct names",
                )


def build_stream_inventory(index: ProgramIndex) -> dict[str, Any]:
    """Machine-readable inventory of every statically visible stream.

    Keys are normalized stream names (f-string placeholders collapsed to
    ``{}``); opaque sites are listed under ``"<opaque>"`` so the artifact
    records that the static inventory is incomplete.
    """
    streams: dict[str, list[dict[str, Any]]] = {}
    for call in index.stream_calls:
        key = call.name if call.name is not None else "<opaque>"
        streams.setdefault(key, []).append(
            {
                "path": call.path,
                "line": call.line,
                "module": call.module,
                "function": call.function,
                "method": call.method,
                "kind": call.kind,
            }
        )
    for sites in streams.values():
        sites.sort(key=lambda s: (s["path"], s["line"]))
    return {
        "stream_count": len(streams),
        "site_count": len(index.stream_calls),
        "streams": {k: streams[k] for k in sorted(streams)},
    }


# ----------------------------------------------------------------------
# D006 — transitive rogue entropy in process-reachable code
# ----------------------------------------------------------------------

_ROGUE_CALLS = _GLOBAL_RANDOM_FUNCS | _WALL_CLOCK_CALLS


@register_program
class TransitiveEntropyRule(ProgramRule):
    """D001/D002 flag direct offenders file-by-file; this rule walks the
    call graph so entropy smuggled through helper layers is still pinned
    to the simulation process that consumes it."""

    rule_id = "D006"
    description = (
        "module-global random.* / wall-clock call in a function "
        "transitively reachable from a simulation process generator"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        chains = index.reachable_from_roots()
        for fqn in sorted(chains):
            fn = index.functions.get(fqn)
            if fn is None:
                continue
            info = index.modules[fn.module]
            for call in _direct_calls(fn.node):
                resolved = info.ctx.resolve(call.func)
                if resolved not in _ROGUE_CALLS:
                    continue
                chain = " -> ".join(chains[fqn])
                yield self.finding(
                    None,
                    info.ctx.path,
                    call.lineno,
                    call.col_offset + 1,
                    f"{resolved}() runs inside simulation processes "
                    f"(reachable via {chain}) without a registry stream; "
                    "draw from RngRegistry / the simulation clock instead",
                )


def _direct_calls(func: ast.AST) -> Iterable[ast.Call]:
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


# ----------------------------------------------------------------------
# R003 — discarded process / timeout handles
# ----------------------------------------------------------------------


@register_program
class DroppedProcessRule(ProgramRule):
    """A discarded ``env.process(...)`` handle can never be joined or
    interrupted (fault injection and clean shutdown both need it), and a
    discarded ``env.timeout(...)`` schedules an event nobody awaits."""

    rule_id = "R003"
    description = (
        "env.process(...) / env.timeout(...) result discarded; keep the "
        "handle (e.g. in a sim.ProcessGroup) so the event can be awaited "
        "or interrupted"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for path in sorted(index.by_path):
            info = index.by_path[path]
            for stmt in ast.walk(info.ctx.tree):
                if not isinstance(stmt, ast.Expr):
                    continue
                call = stmt.value
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("process", "timeout")
                ):
                    continue
                if not _receiver_is_env(func.value):
                    continue
                yield self.finding(
                    None,
                    info.ctx.path,
                    call.lineno,
                    call.col_offset + 1,
                    f"result of {_receiver_text(func)}.{func.attr}(...) is "
                    "discarded, so the event can never be awaited or "
                    "interrupted; retain the handle (sim.ProcessGroup)",
                )


def _receiver_is_env(node: ast.AST) -> bool:
    """The receiver chain's final identifier is ``env`` (``env``,
    ``self.env``, ``chain.env``, ...)."""
    if isinstance(node, ast.Name):
        return node.id == "env"
    if isinstance(node, ast.Attribute):
        return node.attr == "env"
    return False


def _receiver_text(func: ast.Attribute) -> str:
    parts: list[str] = []
    node: ast.AST = func.value
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return ".".join(parts) or "env"
