"""Whole-program analysis layer (lint Tier A).

The per-module rules (D001-D004, R001-R002) see one file at a time; this
package builds a project-wide view — a symbol table, an import graph and
a call graph — so rules can reason *across* modules:

=======  ==============================================================
Rule     What it catches
=======  ==============================================================
D005     the same RNG stream name claimed by distinct modules (silent
         stream sharing), plus opaque dynamically-built stream names
         that defeat the static stream inventory
D006     module-global ``random.*`` / wall-clock calls in functions
         *transitively* reachable from a simulation process generator
R003     ``env.process(...)`` / ``env.timeout(...)`` results discarded,
         so the event can never be awaited, interrupted or cancelled
P001-P005  the performance tier (:mod:`repro.lint.program.performance`):
         allocation and lookup anti-patterns in *hot* code, i.e. code
         reachable from spawned process generators or the DES kernel
W001-W005  the liveness tier (:mod:`repro.lint.program.liveness`):
         unguarded blocking waits, lock-order cycles, zero-delay
         livelock loops, consumer-less queues and slot leaks on the
         fault path — the static half of ``--stallcheck``
=======  ==============================================================

As a side effect of D005's analysis the layer produces a machine-readable
stream-name inventory (:func:`build_stream_inventory`) enumerating every
statically visible RNG stream the program can create.
"""

from repro.lint.program.index import (
    FunctionInfo,
    ModuleInfo,
    ProgramIndex,
    StreamCall,
    module_name_for,
)
from repro.lint.program.rules import (
    PROGRAM_REGISTRY,
    ProgramRule,
    all_program_rules,
    build_stream_inventory,
    register_program,
)

# Tiers P and W register their rules on import (registration order =
# doc order).
from repro.lint.program import performance as _performance  # noqa: E402,F401
from repro.lint.program import liveness as _liveness  # noqa: E402,F401

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "PROGRAM_REGISTRY",
    "ProgramIndex",
    "ProgramRule",
    "StreamCall",
    "all_program_rules",
    "build_stream_inventory",
    "module_name_for",
    "register_program",
]
