"""Tier W — static liveness rules over the program wait graph.

The determinism tiers ask "can this code diverge?" and Tier P asks "does
it allocate per event?"; this tier asks "can this code *stop*?".  The
paper's headline robustness finding (§V) is a liveness bug — the relayer
silently stalls on an oversized WebSocket frame — and the same failure
shape (a process blocked forever on a wait nobody can interrupt) is what
these rules catch before a ten-minute CI timeout does.

The wait graph is built from the same index the other program rules use:
spawn sites say *which* generators run as processes (and whether an
owning :class:`~repro.sim.core.ProcessGroup` can interrupt them), and
the blocking primitives — ``resource.request()``, ``store.get()``,
``store.put()`` — say what those processes block on.

=======  ==============================================================
Rule     What it catches
=======  ==============================================================
W001     a service loop (``while True``) in a process spawned outside
         any ``ProcessGroup`` blocks on a bare ``request()``/``get()``/
         ``put()`` — nothing can interrupt the wait and no deadline
         races it, so a lost wakeup stalls the process silently
W002     two resources acquired in opposite orders on different call
         paths — the classic hold-and-wait deadlock cycle
W003     a ``while True`` process loop with an iteration path that
         yields only zero-delay timeouts (or nothing) — a zero-time
         livelock that floods one sim instant with events
W004     a ``Store``/``deque``/``list`` attribute produced to from hot
         code but never consumed anywhere — statically provable
         unbounded growth (the static complement of alloccheck)
W005     a granted ``Request`` held across a later ``yield`` without a
         ``try/finally`` release — an interrupt or fault raised at
         that yield leaks the slot (tightens R001 to the fault path)
=======  ==============================================================

Like every program rule, resolution is syntactic and conservative: a
wait the index cannot attribute to a process is *unknown*, not safe, and
a clean Tier W run means "no provable stall", not "no stall".
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.program.index import FunctionInfo, ProgramIndex
from repro.lint.program.rules import ProgramRule, register_program

#: Zero-argument methods whose events block the yielding process until
#: another party acts (``put`` takes the item as its one argument).
_BLOCKING_METHODS = {"request": 0, "get": 0, "put": 1}

#: Attribute calls that grow a container (the produce side of W004).
_PRODUCE_METHODS = frozenset({"put", "try_put", "append", "appendleft", "extend"})

#: Container constructors W004 tracks (tail of the resolved dotted name).
_CONTAINER_CTORS = frozenset({"Store", "deque", "list"})


def _chain_text(chain: "list[str]") -> str:
    return " -> ".join(chain)


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(child))))


def _attr_chain_text(node: ast.AST) -> Optional[str]:
    """Dotted text for a ``name[.attr...]`` chain (bare names included)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


def _is_blocking_call(node: ast.AST) -> Optional[str]:
    """Receiver text when ``node`` is ``<recv>.request()/get()/put(x)``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    arity = _BLOCKING_METHODS.get(node.func.attr)
    if arity is None or len(node.args) != arity or node.keywords:
        return None
    return _attr_chain_text(node.func.value) or "<expr>"


def _is_while_true(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.While)
        and isinstance(node.test, ast.Constant)
        and bool(node.test.value)
    )


def _yields_in(node: ast.AST) -> Iterator[ast.AST]:
    for child in _walk_same_function(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            yield child


def _is_real_wait(yield_node: ast.AST) -> bool:
    """True unless the yield provably does not advance or block time.

    A ``yield env.timeout(0)`` wakes again at the same instant; anything
    else — positive or unknown delays, blocking calls, conditions,
    ``yield from`` — is assumed to be a real wait (conservative-quiet).
    """
    if isinstance(yield_node, ast.YieldFrom):
        return True
    value = yield_node.value
    if value is None:
        return False
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "timeout"
        and value.args
        and isinstance(value.args[0], ast.Constant)
    ):
        delay = value.args[0].value
        if isinstance(delay, (int, float)) and not isinstance(delay, bool):
            return delay > 0
    return True


# ----------------------------------------------------------------------
# W001 — unguarded blocking wait in a fire-and-forget service loop
# ----------------------------------------------------------------------


def _unguarded_reachable(
    index: ProgramIndex,
) -> "dict[str, list[str]]":
    """fqn -> chain for functions reachable from unguarded spawn roots.

    Unguarded means spawned via plain ``env.process(...)`` (or
    ``run_process``) and never via a ``ProcessGroup.spawn`` — so no owner
    will interrupt the process on teardown or fault recovery.  The BFS
    does not cross into group-owned roots: code below them runs in a
    guarded process context of its own.
    """
    guarded_only = {
        fqn
        for fqn, methods in index.spawn_methods.items()
        if methods == {"spawn"}
    }
    roots = sorted(
        fqn
        for fqn, methods in index.spawn_methods.items()
        if methods - {"spawn"}
    )
    chains: dict[str, list[str]] = {fqn: [fqn] for fqn in roots}
    frontier = roots
    while frontier:
        next_frontier: list[str] = []
        for fqn in frontier:
            chain = chains[fqn]
            for callee in sorted(index.call_graph.get(fqn, ())):
                if callee in chains or callee in guarded_only:
                    continue
                chains[callee] = chain + [callee]
                next_frontier.append(callee)
        frontier = next_frontier
    return chains


@register_program
class UnguardedWaitRule(ProgramRule):
    """A ``while True`` loop that blocks on a bare resource/store wait,
    running in a process no ``ProcessGroup`` owns, is the §V stall
    class: if the wakeup never comes, nothing can interrupt the wait
    and nothing times it out."""

    rule_id = "W001"
    description = (
        "service loop blocks on a bare request()/get()/put() in a "
        "process spawned outside any ProcessGroup; no interrupt or "
        "deadline can end the wait"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        chains = _unguarded_reachable(index)
        for fqn in sorted(chains):
            fn = index.functions.get(fqn)
            if fn is None or not fn.is_generator:
                continue
            info = index.modules[fn.module]
            for loop in _walk_same_function(fn.node):
                if not _is_while_true(loop):
                    continue
                for node in _walk_same_function(loop):
                    if not isinstance(node, (ast.Yield,)):
                        continue
                    receiver = (
                        _is_blocking_call(node.value)
                        if node.value is not None
                        else None
                    )
                    if receiver is None:
                        continue
                    yield self.finding(
                        None,
                        info.ctx.path,
                        node.lineno,
                        node.col_offset + 1,
                        f"{fn.qualname} blocks forever on {receiver} in a "
                        f"service loop (spawned via "
                        f"{_chain_text(chains[fqn])}) with no owning "
                        "ProcessGroup; spawn it through a group so "
                        "teardown can interrupt it, or race the wait "
                        "with env.any_of([wait, env.timeout(...)])",
                    )


# ----------------------------------------------------------------------
# W002 — inconsistent resource acquisition order
# ----------------------------------------------------------------------


def _acquisitions(fn_node: ast.AST) -> "list[tuple[str, Optional[str], ast.AST]]":
    """(resource text, bound variable, request node) in source order."""
    found: list[tuple[str, Optional[str], ast.AST]] = []
    for node in _walk_same_function(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "request"
                and not value.args
                and not value.keywords
            ):
                recv = _attr_chain_text(value.func.value)
                if recv is not None:
                    found.append((recv, target.id, value))
        elif isinstance(node, ast.Yield) and node.value is not None:
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "request"
                and not value.args
                and not value.keywords
            ):
                recv = _attr_chain_text(value.func.value)
                if recv is not None:
                    found.append((recv, None, value))
    found.sort(key=lambda item: (item[2].lineno, item[2].col_offset))
    return found


def _release_lines(fn_node: ast.AST, var: Optional[str]) -> "list[int]":
    """Lines where the request bound to ``var`` is released/cancelled."""
    if var is None:
        return []
    lines: list[int] = []
    for node in _walk_same_function(fn_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "release"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == var
        ):
            lines.append(node.lineno)
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "cancel"
            and isinstance(func.value, ast.Name)
            and func.value.id == var
        ):
            lines.append(node.lineno)
    return lines


@register_program
class LockOrderRule(ProgramRule):
    """If one path acquires A then B while another acquires B then A,
    two processes can each hold one slot and wait forever for the
    other — a hold-and-wait cycle in the wait graph."""

    rule_id = "W002"
    description = (
        "two resources are acquired in opposite orders on different "
        "call paths; processes can deadlock holding one each"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        # edge (held, acquired) -> first site per function, in fqn order.
        edges: dict[tuple[str, str], list[tuple[FunctionInfo, ast.AST]]] = {}
        for fqn in sorted(index.functions):
            fn = index.functions[fqn]
            if not fn.is_generator:
                continue
            acquired = _acquisitions(fn.node)
            if len(acquired) < 2:
                continue
            for i, (res_a, var_a, _node_a) in enumerate(acquired):
                releases = _release_lines(fn.node, var_a)
                for res_b, _var_b, node_b in acquired[i + 1 :]:
                    if res_b == res_a:
                        continue
                    if any(line <= node_b.lineno for line in releases):
                        continue  # A released before B is requested
                    edges.setdefault((res_a, res_b), []).append((fn, node_b))

        adjacency: dict[str, set[str]] = {}
        for held, acquired_next in edges:
            adjacency.setdefault(held, set()).add(acquired_next)

        def reaches(start: str, goal: str) -> bool:
            seen: set[str] = set()
            stack = [start]
            while stack:
                name = stack.pop()
                if name == goal:
                    return True
                if name in seen:
                    continue
                seen.add(name)
                stack.extend(sorted(adjacency.get(name, ())))
            return False

        for held, acquired_next in sorted(edges):
            if not reaches(acquired_next, held):
                continue
            reverse_sites = edges.get((acquired_next, held), ())
            opposite = (
                f" (the opposite order is taken in "
                f"{reverse_sites[0][0].qualname})"
                if reverse_sites
                else ""
            )
            for fn, node in edges[(held, acquired_next)]:
                info = index.modules[fn.module]
                yield self.finding(
                    None,
                    info.ctx.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"{fn.qualname} acquires {acquired_next} while "
                    f"holding {held}, but the acquisition order cycles"
                    f"{opposite}; pick one global order for these "
                    "resources",
                )


# ----------------------------------------------------------------------
# W003 — zero-delay livelock loops
# ----------------------------------------------------------------------


def _path_can_continue_without_wait(body: "list[ast.stmt]") -> bool:
    """True when some path through one iteration reaches the next one
    having yielded only zero-delay timeouts (or nothing at all).

    The walk is per-statement with If branching; other compound
    statements are treated as opaque: if their subtree contains a real
    wait the path is assumed to take it (conservative-quiet — a loop
    that *may* skip its wait is not flagged unless an explicit branch
    shows it).
    """
    # Each live path is just a "has waited" flag; exits drop the path.
    continued: set[bool] = set()

    def step(statements: "list[ast.stmt]", live: "set[bool]") -> "set[bool]":
        for stmt in statements:
            if not live:
                return live
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break)):
                return set()
            if isinstance(stmt, ast.Continue):
                continued.update(live)
                return set()
            if isinstance(stmt, ast.If):
                live = step(stmt.body, set(live)) | step(stmt.orelse, set(live))
                continue
            if isinstance(stmt, ast.With):
                live = step(stmt.body, live)
                continue
            if any(_is_real_wait(y) for y in _yields_in(stmt)):
                live = {True}
        return live

    continued.update(step(body, {False}))
    return False in continued


@register_program
class ZeroDelayLoopRule(ProgramRule):
    """A ``while True`` loop whose iteration can complete without a
    real wait reschedules itself at the same sim instant forever —
    the event heap floods and time never advances."""

    rule_id = "W003"
    description = (
        "while-True process loop has a path that yields only zero-delay "
        "timeouts; the loop livelocks the current sim instant"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for fqn in sorted(index.functions):
            fn = index.functions[fqn]
            if not fn.is_generator:
                continue
            info = index.modules[fn.module]
            for loop in _walk_same_function(fn.node):
                if not _is_while_true(loop):
                    continue
                if not any(True for _ in _yields_in(loop)):
                    continue  # not a process loop (no waits at all)
                if _path_can_continue_without_wait(loop.body):
                    yield self.finding(
                        None,
                        info.ctx.path,
                        loop.lineno,
                        loop.col_offset + 1,
                        f"while-True loop in {fn.qualname} can iterate "
                        "while yielding only zero-delay timeouts; give "
                        "every path a real wait (positive timeout or "
                        "blocking event) so sim time advances",
                    )


# ----------------------------------------------------------------------
# W004 — produced-to container with no consumer anywhere
# ----------------------------------------------------------------------


def _container_kind(info, value: ast.AST) -> Optional[str]:
    """'Store'/'deque'/'list' when ``value`` constructs one, else None."""
    if isinstance(value, ast.List):
        return "list"
    if not isinstance(value, ast.Call):
        return None
    resolved = info.ctx.resolve(value.func)
    if resolved is None:
        return None
    tail = resolved.rsplit(".", 1)[-1]
    return tail if tail in _CONTAINER_CTORS else None


@register_program
class ProducedNotConsumedRule(ProgramRule):
    """A queue that hot code fills but nothing ever drains (or even
    reads) grows for the whole run — alloccheck sees the symptom at
    run time; this rule sees the missing consumer statically."""

    rule_id = "W004"
    description = (
        "container attribute is produced to from hot code but never "
        "consumed or read anywhere; it can only grow"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        # Container attribute definitions: self.<attr> = Store()/deque()/[].
        definitions: list[tuple[str, str, object, ast.AST]] = []
        # attr -> (function, chain) of a hot producer.
        produced: dict[str, tuple[FunctionInfo, "list[str]"]] = {}
        consumed: set[str] = set()
        hot_chains = index.hot_chains()

        for fqn in sorted(index.functions):
            fn = index.functions[fqn]
            info = index.modules[fn.module]
            producer_inner: set[int] = set()
            for node in _walk_same_function(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _PRODUCE_METHODS
                    and isinstance(node.func.value, ast.Attribute)
                ):
                    attr = node.func.value.attr
                    producer_inner.add(id(node.func.value))
                    if fqn in hot_chains and attr not in produced:
                        produced[attr] = (fn, hot_chains[fqn])
            for node in _walk_same_function(fn.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            kind = _container_kind(info, node.value)
                            if kind is not None:
                                definitions.append(
                                    (target.attr, kind, info, node)
                                )
                elif (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in producer_inner
                ):
                    consumed.add(node.attr)

        for attr, kind, info, node in definitions:
            if attr not in produced or attr in consumed:
                continue
            fn, chain = produced[attr]
            yield self.finding(
                None,
                info.ctx.path,
                node.lineno,
                node.col_offset + 1,
                f"{kind} attribute {attr} is produced to by "
                f"{fn.qualname} (hot via {_chain_text(chain)}) but no "
                "code anywhere consumes or reads it; it grows without "
                "bound — drain it, or delete it",
            )


# ----------------------------------------------------------------------
# W005 — granted request held across a yield without try/finally
# ----------------------------------------------------------------------


def _finally_regions(
    fn_node: ast.AST, var: str
) -> "list[tuple[int, int]]":
    """(start, end) line ranges protected by a finally releasing ``var``."""
    regions: list[tuple[int, int]] = []
    for node in _walk_same_function(fn_node):
        if not (isinstance(node, ast.Try) and node.finalbody):
            continue
        if not _release_lines(ast.Module(body=node.finalbody, type_ignores=[]), var):
            continue
        covered = list(node.body) + list(node.orelse)
        for handler in node.handlers:
            covered.extend(handler.body)
        if not covered:
            continue
        start = min(s.lineno for s in covered)
        end = max(getattr(s, "end_lineno", s.lineno) for s in covered)
        regions.append((start, end))
    return regions


@register_program
class UnprotectedHoldRule(ProgramRule):
    """Between the grant and the release, any yield is a point where an
    interrupt or a failing event raises *inside* the holder; without
    ``try/finally`` the slot is never returned and every later waiter
    queues forever.  (R001 catches requests never released at all;
    this catches releases skipped on the exception path.)"""

    rule_id = "W005"
    description = (
        "granted Request held across a yield without try/finally; an "
        "interrupt at that yield leaks the slot"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for fqn in sorted(index.functions):
            fn = index.functions[fqn]
            if not fn.is_generator:
                continue
            info = index.modules[fn.module]
            for res, var, req_node in _acquisitions(fn.node):
                if var is None:
                    continue
                release_lines = _release_lines(fn.node, var)
                if not release_lines:
                    continue  # never released: that's R001's finding
                grant_line = self._grant_line(fn.node, var)
                if grant_line is None:
                    continue
                regions = _finally_regions(fn.node, var)
                for y in sorted(
                    _yields_in(fn.node), key=lambda n: (n.lineno, n.col_offset)
                ):
                    if y.lineno <= grant_line:
                        continue
                    if any(start <= y.lineno <= end for start, end in regions):
                        continue
                    if any(line <= y.lineno for line in release_lines):
                        continue  # already released by this point
                    yield self.finding(
                        None,
                        info.ctx.path,
                        y.lineno,
                        y.col_offset + 1,
                        f"{fn.qualname} holds the {res} slot granted to "
                        f"{var} across this yield without try/finally; "
                        "an interrupt or failed event here leaks the "
                        "slot — wrap the held region and release in "
                        "finally",
                    )
                    break  # one finding per request variable

    @staticmethod
    def _grant_line(fn_node: ast.AST, var: str) -> Optional[int]:
        for node in _walk_same_function(fn_node):
            if (
                isinstance(node, ast.Yield)
                and isinstance(node.value, ast.Name)
                and node.value.id == var
            ):
                return node.lineno
        return None
