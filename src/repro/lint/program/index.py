"""The program index: symbol table, import graph and call graph.

Built once per lint run from every parsed module, then handed to the
cross-module rules.  Resolution is deliberately *syntactic* — no code is
imported or executed — so precision follows the project's own coding
conventions: absolute imports, ``self``-dispatched methods, and process
generators spawned via ``env.process(self._run(...))``-style calls.
Dynamic dispatch through arbitrary objects is out of scope; rules built
on the index must treat a missing edge as "unknown", never as proof.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.lint.rules.base import ModuleContext

#: Method names whose first argument is treated as a process generator
#: (the spawned callee becomes a call-graph root for reachability).
SPAWN_METHODS = frozenset({"process", "spawn", "run_process"})

#: Modules that *are* the hot path by definition: every function in the
#: DES event loop and its resource layer runs once (or more) per event,
#: so they seed the Tier P "hot" reachability set alongside the spawn
#: roots even though nothing spawns them directly.
HOT_KERNEL_MODULES = frozenset({"repro.sim.core", "repro.sim.resources"})

#: Method/function names that create named RNG streams; the stream name
#: is the call's last positional argument (``stream(name)``,
#: ``keyed(name)``, ``derive_seed(root, name)``).
STREAM_METHODS = frozenset({"stream", "keyed"})
STREAM_FUNCTIONS = frozenset({"derive_seed"})


def module_name_for(path: str) -> str:
    """Dotted module name for a file, by climbing ``__init__.py`` parents.

    ``src/repro/sim/rng.py`` -> ``repro.sim.rng`` (``src`` has no
    ``__init__.py``); a standalone script maps to its stem.
    """
    p = Path(path)
    if p.name == "__init__.py":
        parts: list[str] = []
        directory = p.parent
    else:
        parts = [p.stem]
        directory = p.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    if not parts:  # a bare __init__.py outside any package
        parts = [p.parent.name or p.stem]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the program."""

    module: str  #: dotted module name
    qualname: str  #: e.g. ``Network.delay`` or ``helper``
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    owner_class: Optional[str]  #: enclosing class qualname, if a method
    is_generator: bool

    @property
    def fqn(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class StreamCall:
    """One statically visible RNG stream creation site."""

    module: str
    path: str
    line: int
    col: int
    method: str  #: ``stream`` / ``keyed`` / ``derive_seed``
    #: Normalized stream name: the literal itself, an f-string template
    #: with ``{}`` placeholders, or ``None`` when the name is opaque.
    name: Optional[str]
    kind: str  #: ``literal`` / ``template`` / ``opaque``
    #: Function the call occurs in (``None`` at module level).
    function: Optional[str]


@dataclass
class ModuleInfo:
    """Per-module slice of the program index."""

    name: str
    ctx: ModuleContext
    #: qualname -> function info, in definition order.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class qualname -> base-class dotted names (as written/resolved).
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: class qualname -> its ClassDef node (for body/decorator checks).
    class_nodes: dict[str, ast.ClassDef] = field(default_factory=dict)


class ProgramIndex:
    """Project-wide symbol table, import graph and call graph."""

    def __init__(self) -> None:
        #: module name -> module info.
        self.modules: dict[str, ModuleInfo] = {}
        #: lint path -> module info (for suppression / exemption lookup).
        self.by_path: dict[str, ModuleInfo] = {}
        #: function fqn -> info.
        self.functions: dict[str, FunctionInfo] = {}
        #: module name -> project modules it imports.
        self.import_graph: dict[str, set[str]] = {}
        #: function fqn -> callee fqns (project-internal, resolved).
        self.call_graph: dict[str, set[str]] = {}
        #: fqns spawned as simulation processes (reachability roots).
        self.spawn_roots: set[str] = set()
        #: spawn-root fqn -> the spawn method names used (``process``,
        #: ``spawn``, ``run_process``).  Tier W treats a root spawned
        #: *only* via plain ``env.process(...)`` as unguarded: no owning
        #: :class:`ProcessGroup` will ever interrupt it on teardown.
        self.spawn_methods: dict[str, set[str]] = {}
        #: every statically visible stream creation, in file/line order.
        self.stream_calls: list[StreamCall] = []
        #: class fqn -> (owning module info, class qualname).
        self.classes: dict[str, tuple[ModuleInfo, str]] = {}
        #: function fqn -> class fqns it instantiates.  Tracked separately
        #: from the call graph because a dataclass-generated ``__init__``
        #: has no definition node for the call graph to land on.
        self.instantiations: dict[str, set[str]] = {}
        #: method name -> fqns of every class method with that name; used
        #: for unique-name attribute dispatch (``store.put(...)`` resolves
        #: to ``Store.put`` when exactly one class defines ``put``).
        self._method_owners: dict[str, list[str]] = {}
        self._hot_cache: Optional[dict[str, list[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, contexts: Iterable[ModuleContext]) -> "ProgramIndex":
        index = cls()
        for ctx in contexts:
            name = module_name_for(ctx.path)
            info = ModuleInfo(name=name, ctx=ctx)
            index.modules[name] = info
            index.by_path[ctx.path] = info
        for info in index.modules.values():
            index._collect_definitions(info)
        for fqn in sorted(index.functions):
            fn = index.functions[fqn]
            if fn.owner_class is not None and not fn.qualname.split(".")[
                -1
            ].startswith("__"):
                index._method_owners.setdefault(
                    fn.qualname.split(".")[-1], []
                ).append(fqn)
        for info in index.modules.values():
            index._collect_imports(info)
            index._collect_calls(info)
        return index

    def _collect_definitions(self, info: ModuleInfo) -> None:
        """Symbol table: functions/methods and class base lists."""

        def visit(node: ast.AST, prefix: str, owner: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}" if prefix else child.name
                    fn = FunctionInfo(
                        module=info.name,
                        qualname=qualname,
                        node=child,
                        owner_class=owner,
                        is_generator=_is_generator(child),
                    )
                    info.functions[qualname] = fn
                    self.functions[fn.fqn] = fn
                    visit(child, f"{qualname}.", owner)
                elif isinstance(child, ast.ClassDef):
                    class_qual = f"{prefix}{child.name}" if prefix else child.name
                    info.class_bases[class_qual] = [
                        base
                        for base in (
                            info.ctx.resolve(b) for b in child.bases
                        )
                        if base
                    ]
                    info.class_nodes[class_qual] = child
                    self.classes[f"{info.name}.{class_qual}"] = (info, class_qual)
                    visit(child, f"{class_qual}.", class_qual)

        visit(info.ctx.tree, "", None)

    def _collect_imports(self, info: ModuleInfo) -> None:
        """Import graph restricted to modules in the index."""
        edges: set[str] = set()
        targets = list(info.ctx.module_aliases.values())
        targets += list(info.ctx.from_imports.values())
        for target in targets:
            module = self._owning_module(target)
            if module and module != info.name:
                edges.add(module)
        self.import_graph[info.name] = edges

    def _owning_module(self, dotted: str) -> Optional[str]:
        """Longest known module that is a dotted-prefix of ``dotted``."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def _collect_calls(self, info: ModuleInfo) -> None:
        for fn in info.functions.values():
            callees: set[str] = set()
            for call in _calls_in(fn.node):
                self._record_stream_call(info, call, fn.qualname)
                callee = self._resolve_call(info, fn, call)
                if callee:
                    callees.add(callee)
                instantiated = self._resolve_class(info, call)
                if instantiated:
                    self.instantiations.setdefault(fn.fqn, set()).add(
                        instantiated
                    )
                self._record_spawn(info, fn, call)
            self.call_graph[fn.fqn] = callees
        # Module-level code (including class bodies outside methods).
        for call in self._module_level_calls(info):
            self._record_stream_call(info, call, None)

    def _module_level_calls(self, info: ModuleInfo) -> Iterator[ast.Call]:
        function_nodes = {id(fn.node) for fn in info.functions.values()}

        def visit(node: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(node):
                if id(child) in function_nodes:
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from visit(child)

        return visit(info.ctx.tree)

    def _resolve_call(
        self, info: ModuleInfo, fn: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Resolve a call expression to a known function fqn, if possible."""
        func = call.func
        # self.method(...) / cls.method(...): dispatch within the class,
        # then through statically known base classes.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and fn.owner_class is not None
        ):
            found = self._resolve_method(info, fn.owner_class, func.attr, set())
            if found is not None:
                return found
        resolved = info.ctx.resolve(func)
        if resolved is None:
            # ``store.put(...)``-style attribute dispatch on an arbitrary
            # receiver: resolvable only when exactly one class anywhere in
            # the program defines the method (unique-name dispatch).  A
            # name defined twice stays unresolved — unknown, not proof.
            if isinstance(func, ast.Attribute):
                owners = self._method_owners.get(func.attr, ())
                if len(owners) == 1:
                    return owners[0]
            return None
        # A bare name: a function in this module, or a from-import.
        if "." not in resolved:
            local = info.functions.get(resolved)
            if local is not None:
                return local.fqn
            if resolved in info.class_bases:
                return self._resolve_method(info, resolved, "__init__", set())
            return None
        module = self._owning_module(resolved)
        if module is None:
            return None
        remainder = resolved[len(module) + 1 :]
        target = self.modules[module]
        if remainder in target.functions:
            return target.functions[remainder].fqn
        if remainder in target.class_bases:  # instantiation
            return self._resolve_method(target, remainder, "__init__", set())
        return None

    def _resolve_class(
        self, info: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        """Resolve a call expression to a known *class* fqn (instantiation)."""
        resolved = info.ctx.resolve(call.func)
        if resolved is None:
            return None
        if "." not in resolved:
            if resolved in info.class_bases:
                return f"{info.name}.{resolved}"
            return None
        module = self._owning_module(resolved)
        if module is None:
            return None
        remainder = resolved[len(module) + 1 :]
        if remainder in self.modules[module].class_bases:
            return f"{module}.{remainder}"
        return None

    def resolve_base_fqn(
        self, info: ModuleInfo, base: str
    ) -> Optional[str]:
        """Map a collected base-class name to a class fqn in the index."""
        if "." not in base:
            if base in info.class_bases:
                return f"{info.name}.{base}"
            return None
        module = self._owning_module(base)
        if module is None:
            return None
        remainder = base[len(module) + 1 :]
        if remainder in self.modules[module].class_bases:
            return f"{module}.{remainder}"
        return None

    def class_has_external_base(
        self, class_fqn: str, _seen: Optional[set[str]] = None
    ) -> bool:
        """True when the class (transitively) inherits from anything the
        index cannot see — ``Exception``, ``Enum``, ABCs, third-party
        classes — where adding ``__slots__`` may be wrong or pointless."""
        seen = _seen if _seen is not None else set()
        if class_fqn in seen:
            return False
        seen.add(class_fqn)
        entry = self.classes.get(class_fqn)
        if entry is None:
            return True
        info, qual = entry
        for base in info.class_bases.get(qual, ()):
            if base == "object":
                continue
            resolved = self.resolve_base_fqn(info, base)
            if resolved is None or self.class_has_external_base(resolved, seen):
                return True
        return False

    def _resolve_method(
        self,
        info: ModuleInfo,
        class_qual: str,
        method: str,
        seen: set[str],
    ) -> Optional[str]:
        """Look ``method`` up on a class, then on its known bases."""
        key = f"{info.name}.{class_qual}"
        if key in seen:
            return None
        seen.add(key)
        fn = info.functions.get(f"{class_qual}.{method}")
        if fn is not None:
            return fn.fqn
        for base in info.class_bases.get(class_qual, ()):
            base_module = self._owning_module(base)
            if base_module is not None:
                base_info = self.modules[base_module]
                base_qual = base[len(base_module) + 1 :]
            elif "." not in base and base in info.class_bases:
                base_info, base_qual = info, base
            else:
                continue
            found = self._resolve_method(base_info, base_qual, method, seen)
            if found:
                return found
        return None

    def _record_spawn(
        self, info: ModuleInfo, fn: FunctionInfo, call: ast.Call
    ) -> None:
        """``env.process(self._run(...))`` marks ``_run`` as a root."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in SPAWN_METHODS):
            return
        if not call.args or not isinstance(call.args[0], ast.Call):
            return
        spawned = ast.Call(func=call.args[0].func, args=[], keywords=[])
        callee = self._resolve_call(info, fn, spawned)
        if callee:
            self.spawn_roots.add(callee)
            self.spawn_methods.setdefault(callee, set()).add(func.attr)

    # ------------------------------------------------------------------
    # Stream inventory
    # ------------------------------------------------------------------

    def _record_stream_call(
        self, info: ModuleInfo, call: ast.Call, function: Optional[str]
    ) -> None:
        func = call.func
        method: Optional[str] = None
        name_arg: Optional[ast.AST] = None
        if isinstance(func, ast.Attribute) and func.attr in STREAM_METHODS:
            if len(call.args) == 1:
                method, name_arg = func.attr, call.args[0]
        else:
            resolved = info.ctx.resolve(func)
            if resolved is not None:
                tail = resolved.rsplit(".", 1)[-1]
                if tail in STREAM_FUNCTIONS and len(call.args) == 2:
                    method, name_arg = tail, call.args[1]
        if method is None or name_arg is None:
            return
        name, kind = _normalize_stream_name(name_arg)
        self.stream_calls.append(
            StreamCall(
                module=info.name,
                path=info.ctx.path,
                line=call.lineno,
                col=call.col_offset + 1,
                method=method,
                name=name,
                kind=kind,
                function=function,
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def reachable_from_roots(self) -> dict[str, list[str]]:
        """BFS over the call graph from every spawn root.

        Returns fqn -> call chain (root first) for every reachable
        function, shortest chain wins; deterministic order.
        """
        return self._bfs(sorted(self.spawn_roots))

    def _bfs(self, roots: "list[str]") -> dict[str, list[str]]:
        chains: dict[str, list[str]] = {}
        frontier = sorted(roots)
        for root in frontier:
            chains.setdefault(root, [root])
        while frontier:
            next_frontier: list[str] = []
            for fqn in frontier:
                chain = chains[fqn]
                for callee in sorted(self.call_graph.get(fqn, ())):
                    if callee not in chains:
                        chains[callee] = chain + [callee]
                        next_frontier.append(callee)
            frontier = next_frontier
        return chains

    def hot_roots(self) -> set[str]:
        """Tier P reachability roots: every spawned process generator plus
        every function in the DES kernel modules themselves."""
        roots = set(self.spawn_roots)
        for name in sorted(HOT_KERNEL_MODULES):
            info = self.modules.get(name)
            if info is not None:
                roots.update(fn.fqn for fn in info.functions.values())
        return roots

    def hot_chains(self) -> dict[str, list[str]]:
        """fqn -> shortest chain from a hot root, for every hot function.

        *Hot* means transitively reachable from a spawned process
        generator or from the event loop / resource layer — i.e. code
        that runs per simulated event.  Cached; the index is immutable
        once built.
        """
        if self._hot_cache is None:
            self._hot_cache = self._bfs(sorted(self.hot_roots()))
        return self._hot_cache

    def hot_classes(self) -> dict[str, list[str]]:
        """class fqn -> chain explaining why the class is hot.

        A class is hot when it is defined in a kernel module or when any
        hot function instantiates it (tracked via
        :attr:`instantiations`, which sees dataclass constructors the
        call graph cannot).
        """
        chains = self.hot_chains()
        out: dict[str, list[str]] = {}
        for name in sorted(HOT_KERNEL_MODULES & set(self.modules)):
            for qual in self.modules[name].class_bases:
                fqn = f"{name}.{qual}"
                out.setdefault(fqn, [fqn])
        for fqn in sorted(self.instantiations):
            chain = chains.get(fqn)
            if chain is None:
                continue
            for cls in sorted(self.instantiations[fqn]):
                if cls not in out:
                    out[cls] = chain + [cls]
        return out


def _is_generator(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            owner = _enclosing_ok(node, child)
            if owner:
                return True
    return False


def _enclosing_ok(func: ast.AST, target: ast.AST) -> bool:
    """True if ``target`` belongs to ``func`` itself, not a nested def."""
    # Cheap check: walk again, stopping at nested function boundaries.
    stack: list[ast.AST] = [func]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if child is target:
                return True
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)
    return False


def _calls_in(func: ast.AST) -> Iterator[ast.Call]:
    """Every call in a function body, excluding nested function bodies
    (those are indexed — and resolved — as their own functions)."""
    stack: list[ast.AST] = [func]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        first = False
        if isinstance(node, ast.Call):
            yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _normalize_stream_name(node: ast.AST) -> tuple[Optional[str], str]:
    """Classify a stream-name argument.

    Returns ``(name, kind)`` where kind is ``literal`` for string
    constants, ``template`` for f-strings (placeholders collapsed to
    ``{}``), and ``opaque`` (name ``None``) for anything the analyzer
    cannot see through — which defeats the static inventory.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, "literal"
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("{}")
        return "".join(parts), "template"
    return None, "opaque"
