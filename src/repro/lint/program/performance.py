"""Tier P — static performance rules over the hot-path call graph.

The determinism tiers ask "can this code diverge?"; this tier asks "does
this code allocate or look things up per simulated event when it doesn't
have to?".  *Hot* code is what :meth:`ProgramIndex.hot_chains` reaches:
functions transitively callable from a spawned process generator or from
the DES kernel itself (``sim/core.py`` / ``sim/resources.py``), i.e.
code that runs once or more per event.  Every finding names its chain —
``(hot via a -> b -> c)`` — so the reader can audit the reachability
claim, exactly like D006.

=======  ==============================================================
Rule     What it catches
=======  ==============================================================
P001     hot classes without ``__slots__`` (or ``@dataclass(slots=True)``)
         — a per-instance ``__dict__`` on something built per event
P002     constant container literals and closures built inside hot
         loops — the same object reallocated every iteration
P003     the same attribute chain read three or more times in one hot
         loop — bind it to a local before the loop
P004     eager string formatting handed to a logger (or ``print``) on a
         hot path — the string is built even when the record is dropped
P005     linear membership tests against list literals in hot code —
         a tuple (folded constant) or a set is O(1)
=======  ==============================================================

Resolution is syntactic and conservative (see the index docstring): a
function the call graph cannot reach is *unknown*, not cold, so a clean
Tier P run means "nothing provably hot misbehaves", not "nothing does".
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.program.index import FunctionInfo, ProgramIndex
from repro.lint.program.rules import ProgramRule, register_program

#: Logger method names whose arguments are formatted eagerly at the call
#: site even when the record is filtered out.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


def _chain_text(chain: "list[str]") -> str:
    return " -> ".join(chain)


def _hot_functions(
    index: ProgramIndex,
) -> Iterator[tuple[FunctionInfo, "list[str]"]]:
    """Hot functions with their chains, in deterministic fqn order."""
    chains = index.hot_chains()
    for fqn in sorted(chains):
        fn = index.functions.get(fqn)
        if fn is not None:
            yield fn, chains[fqn]


def _loops_in(func: ast.AST) -> Iterator[ast.AST]:
    """Every for/while loop in a function body, excluding nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(child))))


def _attr_chain_text(node: ast.AST) -> Optional[str]:
    """Dotted text for a pure ``name.attr[.attr...]`` chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or not parts:
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


# ----------------------------------------------------------------------
# P001 — hot classes without __slots__
# ----------------------------------------------------------------------


def _class_declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


@register_program
class HotClassSlotsRule(ProgramRule):
    """Every instance of a hot class carries a ``__dict__`` unless the
    class declares ``__slots__``; at one-or-more instances per simulated
    event that is the single largest avoidable allocation."""

    rule_id = "P001"
    description = (
        "hot class (instantiated per simulated event) has no __slots__ "
        "and no @dataclass(slots=True); instances carry a __dict__"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        hot = index.hot_classes()
        for class_fqn in sorted(hot):
            entry = index.classes.get(class_fqn)
            if entry is None:
                continue
            info, qual = entry
            node = info.class_nodes[qual]
            if _class_declares_slots(node):
                continue
            if index.class_has_external_base(class_fqn):
                # Exception/Enum/ABC/third-party bases: __slots__ may be
                # wrong (layout conflicts) or pointless (base has a dict).
                continue
            # A known base without __slots__ already gives instances a
            # dict; the base gets its own finding, and fixing it makes
            # this one actionable — report both.
            chain = _chain_text(hot[class_fqn])
            yield self.finding(
                None,
                info.ctx.path,
                node.lineno,
                node.col_offset + 1,
                f"class {qual} is hot (via {chain}) but declares no "
                "__slots__; add __slots__ (or @dataclass(slots=True)) so "
                "per-event instances skip the __dict__ allocation",
            )


# ----------------------------------------------------------------------
# P002 — per-iteration constant containers / closures in hot loops
# ----------------------------------------------------------------------


def _constant_container(node: ast.AST) -> Optional[str]:
    """'list'/'dict' when the node is a non-empty all-constant literal."""
    if isinstance(node, ast.List) and node.elts:
        if all(isinstance(e, ast.Constant) for e in node.elts):
            return "list"
    if isinstance(node, ast.Dict) and node.keys:
        parts = list(node.keys) + list(node.values)
        if all(p is not None and isinstance(p, ast.Constant) for p in parts):
            return "dict"
    return None


@register_program
class HotLoopAllocationRule(ProgramRule):
    """A constant literal or a closure built inside a hot loop is the
    same object reallocated every iteration — hoist it."""

    rule_id = "P002"
    description = (
        "constant container literal or closure allocated inside a hot "
        "loop; hoist it out of the per-event path"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for fn, chain in _hot_functions(index):
            info = index.modules[fn.module]
            for loop in _loops_in(fn.node):
                for node in _walk_same_function(loop):
                    kind = _constant_container(node)
                    if kind is not None:
                        yield self.finding(
                            None,
                            info.ctx.path,
                            node.lineno,
                            node.col_offset + 1,
                            f"constant {kind} literal rebuilt every "
                            f"iteration of a hot loop in {fn.qualname} "
                            f"(hot via {_chain_text(chain)}); hoist it to "
                            "a module-level constant",
                        )
                    elif isinstance(
                        node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        name = getattr(node, "name", "<lambda>")
                        yield self.finding(
                            None,
                            info.ctx.path,
                            node.lineno,
                            node.col_offset + 1,
                            f"closure {name} created every iteration of a "
                            f"hot loop in {fn.qualname} (hot via "
                            f"{_chain_text(chain)}); define it once "
                            "outside the loop",
                        )


# ----------------------------------------------------------------------
# P003 — repeated attribute lookups in hot loops
# ----------------------------------------------------------------------

#: Minimum reads of one chain in one loop before P003 fires.
_P003_THRESHOLD = 3


@register_program
class HotLoopAttributeRule(ProgramRule):
    """CPython resolves ``a.b.c`` from scratch on every read; three or
    more reads of the same chain in one hot loop body should be one
    local binding taken before the loop."""

    rule_id = "P003"
    description = (
        "same attribute chain read 3+ times inside one hot loop; bind "
        "it to a local before the loop"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for fn, chain in _hot_functions(index):
            info = index.modules[fn.module]
            written = self._written_chains(fn.node)
            for loop in _loops_in(fn.node):
                reads: dict[str, list[ast.Attribute]] = {}
                rebound = self._rebound_names(loop)
                for node in _walk_same_function(loop):
                    if not (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                    ):
                        continue
                    text = _attr_chain_text(node)
                    if text is None:
                        continue
                    base = text.split(".", 1)[0]
                    if base in rebound or text in written:
                        continue
                    reads.setdefault(text, []).append(node)
                for text in sorted(reads):
                    nodes = reads[text]
                    # Nested chains double-count (a.b.c contains a.b);
                    # only the outermost chain of each site is recorded.
                    if len(nodes) < _P003_THRESHOLD:
                        continue
                    first = nodes[0]
                    yield self.finding(
                        None,
                        info.ctx.path,
                        first.lineno,
                        first.col_offset + 1,
                        f"attribute chain {text} is read {len(nodes)} "
                        f"times in one hot loop in {fn.qualname} (hot via "
                        f"{_chain_text(chain)}); bind it to a local "
                        "before the loop",
                    )

    @staticmethod
    def _written_chains(func: ast.AST) -> "set[str]":
        """Attribute chains assigned anywhere in the function: reading
        them repeatedly may be deliberate (the value changes)."""
        written: set[str] = set()
        for node in _walk_same_function(func):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                text = _attr_chain_text(node)
                if text:
                    written.add(text)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                text = _attr_chain_text(node.target)
                if text:
                    written.add(text)
        return written

    @staticmethod
    def _rebound_names(loop: ast.AST) -> "set[str]":
        """Names stored inside the loop (including its targets): chains
        rooted at them are not loop-invariant."""
        rebound: set[str] = set()
        for node in _walk_same_function(loop):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                rebound.add(node.id)
        return rebound


# ----------------------------------------------------------------------
# P004 — eager formatting on hot logging paths
# ----------------------------------------------------------------------


def _is_eager_format(node: ast.AST) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return isinstance(node.left, ast.Constant) and isinstance(
            node.left.value, str
        )
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return True
    return False


@register_program
class HotLogFormatRule(ProgramRule):
    """``log.debug(f"...")`` renders the message even when the level is
    disabled; on a per-event path that is pure allocation overhead.  Use
    lazy ``%s`` arguments (or guard with ``isEnabledFor``)."""

    rule_id = "P004"
    description = (
        "eagerly formatted string handed to a logger (or print) in hot "
        "code; use lazy %s arguments so filtered records cost nothing"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for fn, chain in _hot_functions(index):
            info = index.modules[fn.module]
            for node in _walk_same_function(fn.node):
                if not (isinstance(node, ast.Call) and node.args):
                    continue
                func = node.func
                is_logger = (
                    isinstance(func, ast.Attribute)
                    and func.attr in _LOG_METHODS
                    and "log" in (_attr_chain_text(func) or "").lower()
                )
                is_print = isinstance(func, ast.Name) and func.id == "print"
                if not (is_logger or is_print):
                    continue
                if any(_is_eager_format(arg) for arg in node.args):
                    target = "print" if is_print else _attr_chain_text(func)
                    yield self.finding(
                        None,
                        info.ctx.path,
                        node.lineno,
                        node.col_offset + 1,
                        f"{target}(...) formats its message eagerly in "
                        f"hot {fn.qualname} (hot via {_chain_text(chain)});"
                        " pass lazy %s arguments instead",
                    )


# ----------------------------------------------------------------------
# P005 — linear membership tests on lists in hot code
# ----------------------------------------------------------------------


def _is_list_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.List):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "list"
    )


@register_program
class HotListMembershipRule(ProgramRule):
    """``x in [a, b, c]`` scans linearly and rebuilds the list per test;
    a constant tuple is folded once and a set tests in O(1)."""

    rule_id = "P005"
    description = (
        "membership test against a list in hot code; use a tuple "
        "constant or a set"
    )

    def check(self, index: ProgramIndex) -> Iterable[Finding]:
        for fn, chain in _hot_functions(index):
            info = index.modules[fn.module]
            for node in _walk_same_function(fn.node):
                if not isinstance(node, ast.Compare):
                    continue
                for op, comparator in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    if _is_list_expr(comparator):
                        yield self.finding(
                            None,
                            info.ctx.path,
                            comparator.lineno,
                            comparator.col_offset + 1,
                            "membership test against a list in hot "
                            f"{fn.qualname} (hot via {_chain_text(chain)});"
                            " use a tuple constant or a set",
                        )
