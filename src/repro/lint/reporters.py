"""Finding reporters: text (human) and JSON (machine / CI)."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro.lint: no findings"
    lines = [f.format() for f in findings]
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    lines.append(f"repro.lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
