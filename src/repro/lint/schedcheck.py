"""Dynamic scheduler-race sanitizer (lint Tier B).

The static rules can prove a *pattern* is risky; they cannot prove the
absence of a scheduling race.  This module provides the dynamic
complement: run a scenario twice with the :class:`~repro.sim.core.Environment`
heap's same-time/same-priority tie-break reversed (``fifo`` vs ``lifo``)
and diff the artifacts.  The seq-number tie-break makes *any* event order
reproducible, including orders that silently depend on it — reversing the
tie-break is the cheapest way to make such hidden order dependencies
visible, the same trick thread sanitizers play with scheduler
perturbation.

Divergence semantics
--------------------

* **report** — the experiment report JSON must match *byte for byte*.
  Any difference (a timestamp, a count, a gas total) means simulation
  state evolved differently, i.e. a real race.
* **journal** — structured log records must match as a sorted multiset.
  Two events at the same instant may legitimately be *logged* in either
  order (their relative order is exactly what the tie-break decides), so
  same-time interleaving is presentation, not state.  A record that
  changes content or timestamp, appears, or disappears is a race.

A divergence is always a bug in the *simulation*, never in the checker:
some component let the heap's tie order leak into state — typically by
drawing from a shared sequential RNG stream inside concurrently-running
processes (fix: a :class:`~repro.sim.rng.KeyedStream`), or by iterating
an unordered container.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable

#: How many individual differences to spell out per artifact.
MAX_DETAILS = 8


@dataclass(frozen=True)
class RunArtifacts:
    """What one run of a scenario produced, in comparable form."""

    report: str  #: canonical report JSON text
    journal: str  #: newline-separated structured log records


@dataclass(frozen=True)
class Divergence:
    """One observed fifo-vs-lifo difference."""

    kind: str  #: ``"report"`` or ``"journal"``
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class SchedcheckResult:
    """Outcome of one scenario's tie-break reversal probe."""

    scenario: str
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.clean:
            return (
                f"schedcheck[{self.scenario}]: OK — fifo and lifo tie-break "
                "runs produced identical artifacts"
            )
        lines = [
            f"schedcheck[{self.scenario}]: RACE — {len(self.divergences)} "
            "divergence(s) between fifo and lifo tie-break runs:"
        ]
        lines += [f"  {d}" for d in self.divergences]
        lines.append(
            "  a divergence means event-heap tie order leaked into simulation "
            "state (see DESIGN.md §6: how to read a schedcheck divergence)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _json_diff_paths(a: object, b: object, path: str = "$") -> Iterable[str]:
    """Dotted paths where two parsed JSON documents differ."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}"
            if key not in a:
                yield f"{sub}: only in lifo run"
            elif key not in b:
                yield f"{sub}: only in fifo run"
            else:
                yield from _json_diff_paths(a[key], b[key], sub)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            yield f"{path}: length {len(a)} != {len(b)}"
        else:
            for i, (x, y) in enumerate(zip(a, b)):
                yield from _json_diff_paths(x, y, f"{path}[{i}]")
    elif a != b:
        yield f"{path}: {a!r} != {b!r}"


def compare_runs(
    scenario: str, fifo: RunArtifacts, lifo: RunArtifacts
) -> SchedcheckResult:
    """Diff two tie-break runs of one scenario into a result."""
    result = SchedcheckResult(scenario)

    if fifo.report != lifo.report:
        try:
            paths = list(
                _json_diff_paths(json.loads(fifo.report), json.loads(lifo.report))
            )
        except ValueError:
            paths = ["report text differs (not JSON-parseable)"]
        shown = paths[:MAX_DETAILS]
        if len(paths) > len(shown):
            shown.append(f"... and {len(paths) - len(shown)} more")
        result.divergences += [Divergence("report", p) for p in shown]

    fifo_records = sorted(fifo.journal.splitlines())
    lifo_records = sorted(lifo.journal.splitlines())
    if fifo_records != lifo_records:
        only_fifo = _multiset_minus(fifo_records, lifo_records)
        only_lifo = _multiset_minus(lifo_records, fifo_records)
        details = [f"only in fifo run: {r}" for r in only_fifo[:MAX_DETAILS]]
        details += [f"only in lifo run: {r}" for r in only_lifo[:MAX_DETAILS]]
        extra = (len(only_fifo) + len(only_lifo)) - len(details)
        if extra > 0:
            details.append(f"... and {extra} more")
        if not details:  # same multiset sizes but impossible branch guard
            details = ["journal record multisets differ"]
        result.divergences += [Divergence("journal", d) for d in details]

    return result


def _multiset_minus(a: list[str], b: list[str]) -> list[str]:
    """Sorted multiset difference a - b."""
    counts: dict[str, int] = {}
    for record in b:
        counts[record] = counts.get(record, 0) + 1
    out = []
    for record in a:
        remaining = counts.get(record, 0)
        if remaining:
            counts[record] = remaining - 1
        else:
            out.append(record)
    return out


def check(
    scenario: str, run: Callable[[str], RunArtifacts]
) -> SchedcheckResult:
    """Run ``run`` under both tie-break policies and diff the artifacts.

    ``run`` receives the tie-break policy name (``"fifo"``/``"lifo"``) and
    returns the artifacts of one complete scenario execution.
    """
    return compare_runs(scenario, run("fifo"), run("lifo"))


# ---------------------------------------------------------------------------
# Experiment-backed scenarios
# ---------------------------------------------------------------------------


def experiment_artifacts(config) -> RunArtifacts:
    """Run one :class:`~repro.framework.ExperimentConfig` and collect its
    report JSON plus the concatenated relayer/driver journals."""
    from repro.framework import run_experiment

    report = run_experiment(config, capture_journal=True)
    document = report.to_dict()
    # The report echoes its config, which includes the tie-break policy —
    # the one input this checker *deliberately* varies.  Mask that echo so
    # the diff only sees simulation state, not the knob itself.
    document["config"]["tiebreak"] = "<varied-by-schedcheck>"
    report_text = json.dumps(document, indent=2)
    return RunArtifacts(report=report_text, journal=report.journal or "")


def _golden_config(tiebreak: str, seed: int):
    from repro.framework import ExperimentConfig

    return ExperimentConfig(
        input_rate=20,
        measurement_blocks=4,
        seed=seed,
        drain_seconds=20.0,
        tiebreak=tiebreak,
    )


def _golden_faults_config(tiebreak: str, seed: int):
    from repro.faults import (
        FaultSchedule,
        LinkDegradation,
        NodeCrash,
        RpcBrownout,
        WsDisconnect,
    )
    from repro.framework import ExperimentConfig, FleetConfig

    faults = FaultSchedule(
        (
            LinkDegradation(
                "machine-0", "machine-1",
                at=2.0, duration=15.0, latency=0.3, jitter=0.05, loss=0.05,
            ),
            RpcBrownout("machine-0", at=4.0, duration=10.0, drop_probability=0.3),
            NodeCrash("machine-1", at=6.0, duration=12.0),
            WsDisconnect("machine-0", at=18.0),
        )
    )
    return ExperimentConfig(
        input_rate=10,
        measurement_blocks=3,
        seed=seed,
        drain_seconds=30.0,
        relayer=FleetConfig(rpc_retry_attempts=3),
        clear_interval=2,
        faults=faults,
        tiebreak=tiebreak,
    )


def _line3_config(tiebreak: str, seed: int):
    from repro.framework import ExperimentConfig, TopologySpec

    return ExperimentConfig(
        input_rate=5,
        measurement_blocks=3,
        seed=seed,
        drain_seconds=45.0,
        topology=TopologySpec.line(3),
        tracing=True,
        tiebreak=tiebreak,
    )


def _hub4_config(tiebreak: str, seed: int):
    from repro.framework import ExperimentConfig, TopologySpec

    return ExperimentConfig(
        input_rate=5,
        measurement_blocks=3,
        seed=seed,
        drain_seconds=45.0,
        topology=TopologySpec.hub_and_spoke(4),
        tracing=True,
        tiebreak=tiebreak,
    )


def _fleet_config(tiebreak: str, seed: int):
    """Leader-policy fleet with a mid-run leader crash and failover.

    Two relayers on one edge under the ``leader`` policy; machine-0 (the
    leader's host) crashes after the fixed-total workload has finished
    submitting, so member 1 takes over, clears the pending packets, and
    leadership fails back once machine-0 recovers.  ``run_to_completion``
    makes the 100 %-delivery property part of the diffed artifact.
    """
    from repro.faults import FaultSchedule, NodeCrash
    from repro.framework import ExperimentConfig, FleetConfig

    return ExperimentConfig(
        input_rate=10,
        measurement_blocks=3,
        num_relayers=2,
        total_transfers=40,
        submission_blocks=1,
        seed=seed,
        run_to_completion=True,
        clear_interval=2,
        relayer=FleetConfig(policy="leader", rpc_retry_attempts=3),
        faults=FaultSchedule(
            (NodeCrash("machine-0", at=8.0, duration=30.0),)
        ),
        tiebreak=tiebreak,
    )


def _skewed_config(tiebreak: str, seed: int):
    """Engine-mode workload: Zipf senders, bursty arrivals, adversaries.

    Every draw in the workload engine is keyed by arrival index rather
    than pulled from a shared sequential stream, so the Zipf sender
    choices, MMPP phase flips, payload sizes and spam/griefing tick
    times must all survive a tie-break reversal byte-for-byte.  This is
    the scenario that would catch a sequential-RNG regression in
    ``repro.workload``.
    """
    from repro.framework import ExperimentConfig, WorkloadSpec

    return ExperimentConfig(
        input_rate=20,
        measurement_blocks=3,
        seed=seed,
        drain_seconds=20.0,
        workload=WorkloadSpec(
            population=200,
            zipf_s=1.2,
            arrival="bursty",
            spam_rate=0.3,
            griefing_rate=0.1,
        ),
        tiebreak=tiebreak,
    )


#: Named scenarios for the CLI / pytest marker.  Each maps a name to a
#: ``(tiebreak, seed) -> ExperimentConfig`` factory.
SCENARIOS: dict[str, Callable] = {
    "golden": _golden_config,
    "golden-faults": _golden_faults_config,
    "fleet": _fleet_config,
    "line3": _line3_config,
    "hub4": _hub4_config,
    "skewed": _skewed_config,
}


def check_scenario(name: str, seed: int = 7) -> SchedcheckResult:
    """Run a named scenario under both tie-breaks and diff the artifacts."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown schedcheck scenario {name!r} (known: {known})")
    return check(name, lambda tb: experiment_artifacts(factory(tb, seed)))
