"""repro.lint — determinism & simulation-correctness analysis, two tiers.

The reproduction's numbers are only credible if the discrete-event
simulation replays identically for a given seed.  This package enforces
that property with a per-module rule set, a whole-program analysis layer
(symbol table + import graph + call graph over every linted module), and
a dynamic scheduler-race sanitizer:

=======  ==============================================================
Rule     What it forbids
=======  ==============================================================
D001     wall-clock reads (``time.time``, ``datetime.now``, ...)
D002     RNG construction outside ``sim/rng.py``'s RngRegistry streams
D003     iteration over sets / raw ``dict.keys()`` in ordered positions
D004     float equality comparisons on simulated timestamps
R001     sim resource ``request()`` without a matching ``release()``
R002     swallowed RPC errors (bare/broad ``except`` around RPC calls)
D005     one RNG stream name claimed by multiple modules; opaque
         dynamically-built stream names (whole-program)
D006     module-global entropy transitively reachable from a simulation
         process generator (whole-program)
R003     discarded ``env.process(...)`` / ``env.timeout(...)`` handles
         (whole-program)
=======  ==============================================================

The whole-program phase also emits a machine-readable RNG stream-name
inventory (``--stream-inventory FILE``).  The dynamic tier,
:mod:`repro.lint.schedcheck`, reruns a scenario with the event-heap
tie-break reversed and treats any artifact divergence as a scheduling
race (``python -m repro lint --schedcheck <scenario>``).

Run the static tiers with ``python -m repro.lint [paths]`` (or
``python -m repro lint``).  Findings can be waived inline with
``# repro-lint: disable=<RULE>`` or per-file with
``# repro-lint: disable-file=<RULE>``.
"""

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.program import (
    PROGRAM_REGISTRY,
    ProgramIndex,
    all_program_rules,
    build_stream_inventory,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import REGISTRY, all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "PROGRAM_REGISTRY",
    "ProgramIndex",
    "REGISTRY",
    "all_program_rules",
    "all_rules",
    "build_stream_inventory",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
