"""repro.lint — AST-based determinism & simulation-correctness analyzer.

The reproduction's numbers are only credible if the discrete-event
simulation replays identically for a given seed.  This package enforces
that property statically, forever, with a small rule set:

=======  ==============================================================
Rule     What it forbids
=======  ==============================================================
D001     wall-clock reads (``time.time``, ``datetime.now``, ...)
D002     RNG construction outside ``sim/rng.py``'s RngRegistry streams
D003     iteration over sets / raw ``dict.keys()`` in ordered positions
D004     float equality comparisons on simulated timestamps
R001     sim resource ``request()`` without a matching ``release()``
=======  ==============================================================

Run it with ``python -m repro.lint [paths]`` (or ``python -m repro lint``).
Findings can be waived inline with ``# repro-lint: disable=<RULE>``.
"""

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import REGISTRY, all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "REGISTRY",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
