"""repro.lint — determinism, performance & liveness analysis.

The reproduction's numbers are only credible if the discrete-event
simulation replays identically for a given seed, runs fast enough to
sweep, and never silently stalls.  This package enforces all three with
a per-module rule set, a whole-program analysis layer (symbol table +
import graph + call graph over every linted module), and three dynamic
sanitizers:

=======  ==============================================================
Rule     What it forbids
=======  ==============================================================
D001     wall-clock reads (``time.time``, ``datetime.now``, ...)
D002     RNG construction outside ``sim/rng.py``'s RngRegistry streams
D003     iteration over sets / raw ``dict.keys()`` in ordered positions
D004     float equality comparisons on simulated timestamps
R001     sim resource ``request()`` without a matching ``release()``
R002     swallowed RPC errors (bare/broad ``except`` around RPC calls)
D005     one RNG stream name claimed by multiple modules; opaque
         dynamically-built stream names (whole-program)
D006     module-global entropy transitively reachable from a simulation
         process generator (whole-program)
R003     discarded ``env.process(...)`` / ``env.timeout(...)`` handles
         (whole-program)
P001     hot classes without ``__slots__`` (whole-program)
P002     constant containers/closures rebuilt in hot loops
P003     repeated attribute-chain reads in one hot loop
P004     eager string formatting handed to loggers in hot code
P005     list-literal membership tests in hot code
W001     unguarded blocking waits in uninterruptible service loops
W002     resources acquired in opposite orders (circular wait)
W003     loops that can iterate without a real wait (livelock)
W004     containers produced to from hot code but never consumed
W005     granted requests held across a ``yield`` outside try/finally
=======  ==============================================================

The whole-program phase also emits a machine-readable RNG stream-name
inventory (``--stream-inventory FILE``).  The dynamic tiers rerun real
scenarios: :mod:`repro.lint.schedcheck` reverses the event-heap
tie-break and treats any artifact divergence as a scheduling race,
:mod:`repro.lint.alloccheck` diffs per-event allocations against a
pinned budget, and :mod:`repro.lint.stallcheck` monitors a run's wait
graph, tears the testbed down, and reports deadlocks, livelocks, leaks
and store-backlog regressions
(``python -m repro lint --schedcheck|--alloccheck|--stallcheck <scenario>``).

Run the static tiers with ``python -m repro.lint [paths]`` (or
``python -m repro lint``).  Findings can be waived inline with
``# repro-lint: disable=<RULE>`` or per-file with
``# repro-lint: disable-file=<RULE>``.
"""

from repro.lint.config import LintConfig
from repro.lint.driver import lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.program import (
    PROGRAM_REGISTRY,
    ProgramIndex,
    all_program_rules,
    build_stream_inventory,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import REGISTRY, all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "PROGRAM_REGISTRY",
    "ProgramIndex",
    "REGISTRY",
    "all_program_rules",
    "all_rules",
    "build_stream_inventory",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
