"""repro.trace — per-packet lifecycle tracing for the simulated stack.

A zero-wall-clock span/event tracer threaded through workload, chains,
RPC/WebSocket and relayers; every record is stamped with simulated time
and keyed (where applicable) by ``(source_channel, sequence)`` packet
identity.  :mod:`repro.trace.export` renders a run as Chrome/Perfetto
``trace_event`` JSON; the latency-decomposition aggregator lives in
:func:`repro.framework.metrics.collect_trace_metrics`; the ASCII
waterfall in :func:`repro.analysis.render_packet_waterfall`.
"""

from repro.trace.export import (
    to_perfetto_json,
    trace_event_document,
    write_perfetto,
)
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    format_key,
    json_safe,
    packet_key,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "format_key",
    "json_safe",
    "packet_key",
    "to_perfetto_json",
    "trace_event_document",
    "write_perfetto",
]
