"""Chrome/Perfetto ``trace_event`` export of a traced run.

Produces the JSON object format both ``chrome://tracing`` and
https://ui.perfetto.dev accept: a ``traceEvents`` list of complete
(``"ph": "X"``) and instant (``"ph": "i"``) events plus thread-name
metadata.  Simulated seconds become microseconds (the format's native
unit); each tracer *track* (a component such as ``ibc-0/consensus`` or
``hermes-0/worker``) maps to one thread row, assigned in sorted-track
order so the export is deterministic for a given run.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.tracer import Tracer, format_key

#: Simulated seconds -> trace_event microseconds.
MICROSECONDS = 1_000_000.0


def _us(seconds: float) -> int:
    """Seconds as integer microseconds (the format's native unit)."""
    return round(seconds * MICROSECONDS)


def _args(record) -> dict[str, Any]:
    args = dict(record.attrs)
    if record.key is not None:
        args["packet"] = format_key(record.key)
    return args


def trace_event_document(tracer: Tracer) -> dict[str, Any]:
    """Render a tracer's records as a ``trace_event`` JSON document."""
    tracks = sorted(
        {s.track for s in tracer.spans} | {e.track for e in tracer.events}
    )
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    trace_events: list[dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tids[track],
            "args": {"name": track},
        }
        for track in tracks
    ]

    rows: list[tuple[float, int, int, dict[str, Any]]] = []
    for span in tracer.spans:
        if not span.closed:
            continue  # an interrupted lifecycle never completed; skip
        rows.append(
            (
                span.start,
                tids[span.track],
                span.span_id,
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": _us(span.start),
                    "dur": max(0, _us(span.end) - _us(span.start)),
                    "pid": 0,
                    "tid": tids[span.track],
                    "args": _args(span),
                },
            )
        )
    for index, event in enumerate(tracer.events):
        rows.append(
            (
                event.time,
                tids[event.track],
                index,
                {
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "ts": _us(event.time),
                    "pid": 0,
                    "tid": tids[event.track],
                    "args": _args(event),
                },
            )
        )
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    trace_events.extend(row[3] for row in rows)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def to_perfetto_json(tracer: Tracer, indent: int = 0) -> str:
    """The document as JSON text, ready to load in the Perfetto UI."""
    return json.dumps(
        trace_event_document(tracer), indent=indent if indent else None
    )


def write_perfetto(tracer: Tracer, path: str) -> int:
    """Write the export to ``path``; returns the event count."""
    document = trace_event_document(tracer)
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["traceEvents"])
