"""``python -m repro trace`` — run one traced experiment and report.

Runs a fixed-total, run-to-completion experiment with per-packet
lifecycle tracing enabled, then prints the latency decomposition
(:func:`repro.analysis.render_trace_table`) and a per-packet waterfall.
The default scenario is the conformance batch the test harness pins:
200 single-message transfers submitted in one block at the paper's
calibration, whose data-pull share lands in the paper's 60-80 % band.

Examples::

    # The conformance scenario, table + waterfall
    python -m repro trace

    # Fig. 12's megabatch shape, exported for ui.perfetto.dev
    python -m repro trace --total 5000 --msgs-per-tx 100 --perfetto out.json

    # Machine-readable decomposition only
    python -m repro trace --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.framework import ExperimentConfig, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one traced experiment and print its per-packet latency "
            "decomposition."
        ),
    )
    parser.add_argument(
        "--total", type=int, default=200,
        help="transfers to submit (fixed-total mode, default 200)",
    )
    parser.add_argument(
        "--msgs-per-tx", type=int, default=1,
        help="transfer messages per transaction (default 1)",
    )
    parser.add_argument(
        "--spread", type=int, default=1,
        help="spread the total over this many blocks (default 1)",
    )
    parser.add_argument(
        "--relayers", type=int, default=1,
        help="number of uncoordinated relayer instances (default 1)",
    )
    parser.add_argument(
        "--rtt", type=float, default=0.2,
        help="inter-machine round-trip latency in seconds (default 0.2)",
    )
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument(
        "--waterfall", type=int, default=24,
        help="packet rows in the ASCII waterfall (0 disables, default 24)",
    )
    parser.add_argument(
        "--perfetto", type=str, default=None, metavar="PATH",
        help="write a Chrome/Perfetto trace_event JSON file",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the report's trace section as JSON instead of tables",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(
        total_transfers=args.total,
        msgs_per_tx=args.msgs_per_tx,
        submission_blocks=args.spread,
        num_relayers=args.relayers,
        network_rtt=args.rtt,
        run_to_completion=True,
        tracing=True,
        seed=args.seed,
    )
    report = run_experiment(config)
    trace = report.trace
    assert trace is not None  # tracing=True guarantees the section
    if args.json:
        print(json.dumps(trace.to_dict(), indent=2))
    else:
        from repro.analysis import render_packet_waterfall, render_trace_table

        print(render_trace_table(trace))
        if args.waterfall > 0:
            print()
            print(render_packet_waterfall(trace, limit=args.waterfall))
    if args.perfetto:
        from repro.trace.export import write_perfetto

        count = write_perfetto(report.tracer, args.perfetto)
        print(
            f"\n{count} trace events written to {args.perfetto} "
            f"(load at ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
