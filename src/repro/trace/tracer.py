"""Zero-wall-clock structured tracing for the simulated IBC stack.

The tracer records *spans* (named intervals with a start and end) and
*events* (named instants) as the simulation runs.  Every timestamp is the
simulated clock (``env.now``) — the tracer never reads a wall clock, never
draws randomness and never interacts with the event heap, so enabling it
cannot perturb a run: a traced experiment produces byte-identical
non-trace report sections to an untraced one.

Records that belong to one cross-chain packet carry a *packet key*, the
``(source_chain, source_channel, sequence)`` triple that identifies an
IBC packet across every chain and relayer.  The chain component matters
once a topology has more than one connection: every spoke's first packet
is ``("channel-0", 1)`` on its own chain, so the channel/sequence pair
alone collides.  The aggregator
(:func:`repro.framework.metrics.collect_trace_metrics`) joins the records
on that key into per-packet lifecycles and the latency decomposition the
paper reports (69 % of transfer time in serial data pulls).

Two recording styles:

* :meth:`Tracer.record_span` — a retrospective span whose start time the
  caller sampled earlier; used where begin and end are visible in one
  scope (RPC service, data pulls, block execution).
* :meth:`Tracer.open_span` / :meth:`Tracer.close_span` — a genuinely
  in-flight span that closes in a different scope (a workload submission
  that confirms blocks later).  Lint rule R004 enforces the pairing the
  same way R001 enforces resource-slot release.

A disabled run uses the module-level :data:`NULL_TRACER`, whose methods
are no-ops, so instrumentation sites need no conditionals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


def packet_key(
    source_chain: str, source_channel: str, sequence: int
) -> tuple[str, str, int]:
    """Canonical packet identity: *source* chain, channel and sequence."""
    return (str(source_chain), str(source_channel), int(sequence))


def format_key(key: tuple[str, str, int]) -> str:
    return f"{key[0]}/{key[1]}/{key[2]}"


def json_safe(value: Any) -> Any:
    """Coerce an attribute value to something JSON-serializable."""
    if isinstance(value, bytes):
        return value.hex().upper()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass
class Span:
    """A named interval on one track, optionally tied to a packet."""

    span_id: int
    name: str
    track: str
    start: float
    end: Optional[float] = None
    key: Optional[tuple[str, str, int]] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start


@dataclass(frozen=True)
class TraceEvent:
    """A named instant on one track, optionally tied to a packet."""

    name: str
    track: str
    time: float
    key: Optional[tuple[str, str, int]] = None
    attrs: tuple[tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default


class Tracer:
    """Collects spans and events stamped with simulated time only."""

    enabled = True

    def __init__(self, env):
        self.env = env
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._next_span_id = 1

    # -- recording -----------------------------------------------------

    def open_span(
        self,
        name: str,
        track: str,
        key: Optional[tuple[str, str, int]] = None,
        **attrs: Any,
    ) -> Span:
        """Start a span now; pair with :meth:`close_span` (rule R004)."""
        span = Span(
            span_id=self._next_span_id,
            name=name,
            track=track,
            start=self.env.now,
            key=key,
            attrs={k: json_safe(v) for k, v in attrs.items()},
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def close_span(self, span: Span, **attrs: Any) -> Span:
        """End an open span now, merging any late-bound attributes."""
        span.end = self.env.now
        for k, v in attrs.items():
            span.attrs[k] = json_safe(v)
        return span

    def record_span(
        self,
        name: str,
        track: str,
        start: float,
        end: Optional[float] = None,
        key: Optional[tuple[str, str, int]] = None,
        **attrs: Any,
    ) -> Span:
        """Record a completed span whose start was sampled earlier."""
        span = self.open_span(name, track, key, **attrs)
        span.start = start
        span.end = self.env.now if end is None else end
        return span

    def event(
        self,
        name: str,
        track: str,
        key: Optional[tuple[str, str, int]] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record a point-in-time event at the current simulated instant."""
        record = TraceEvent(
            name=name,
            track=track,
            time=self.env.now,
            key=key,
            attrs=tuple((k, json_safe(v)) for k, v in attrs.items()),
        )
        self.events.append(record)
        return record

    # -- views ---------------------------------------------------------

    def packet_events(self, name: Optional[str] = None) -> list[TraceEvent]:
        """Events carrying a packet key, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.key is not None and (name is None or e.name == name)
        ]

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    @property
    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if not s.closed]


_NULL_SPAN = Span(span_id=0, name="<null>", track="<null>", start=0.0, end=0.0)


class NullTracer:
    """Tracing disabled: every method is a no-op.

    Instrumentation sites call the same API either way; the null tracer
    keeps the disabled path allocation-free and branch-free.
    """

    enabled = False

    def open_span(self, name, track, key=None, **attrs):
        return _NULL_SPAN

    def close_span(self, span, **attrs):
        return _NULL_SPAN

    def record_span(self, name, track, start, end=None, key=None, **attrs):
        return _NULL_SPAN

    def event(self, name, track, key=None, **attrs):
        return None

    def packet_events(self, name=None):
        return []

    def spans_named(self, name):
        return []

    @property
    def open_spans(self):
        return []


#: Shared do-nothing tracer for untraced runs.
NULL_TRACER = NullTracer()
