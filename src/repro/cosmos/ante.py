"""The ante handler: signature and sequence verification.

This module implements the check the paper's §V calls out (and links to in
``x/auth/ante/sigverify.go``): a transaction is valid only if its sequence
number equals the signer account's current sequence.  Because the sequence
increments when a transaction *executes*, a user cannot have two
transactions accepted in the same block — the root cause of the paper's
``account sequence mismatch`` deployment challenge and the reason its
workload uses many accounts with 100 messages per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cosmos.accounts import AccountKeeper
from repro.cosmos.tx import Tx
from repro.errors import ChainError, SequenceMismatchError
from repro.tendermint.crypto import GLOBAL_SIGNATURES


@dataclass
class AnteResult:
    gas_wanted: int


class AnteHandler:
    """Runs before message execution in both CheckTx and DeliverTx."""

    def __init__(self, accounts: AccountKeeper):
        self.accounts = accounts

    def validate(self, tx: Tx, check_only: bool = False) -> AnteResult:
        """Validate signature + sequence; bump sequence unless ``check_only``.

        CheckTx (mempool admission) passes ``check_only=True``: it validates
        against current state but does not persist the increment — which is
        why a *second* tx with the next sequence can sit in the mempool but
        also why replayed sequences surface as errors only at execution.
        """
        account = self.accounts.get(tx.signer_address)
        if account is None:
            raise ChainError(f"unknown account {tx.signer_address}", code=2)
        if tx.sequence != account.sequence:
            raise SequenceMismatchError(
                expected=account.sequence,
                got=tx.sequence,
                account=tx.signer_address,
            )
        if not GLOBAL_SIGNATURES.verify(tx.public_key, tx.sign_bytes(), tx.signature):
            raise ChainError("signature verification failed", code=4)
        if tx.public_key.address != tx.signer_address:
            raise ChainError("public key does not match signer address", code=4)
        if not check_only:
            account.sequence += 1
        return AnteResult(gas_wanted=tx.gas_limit)

    def validate_for_mempool(self, tx: Tx, expected_sequence: int) -> AnteResult:
        """CheckTx-path validation against the mempool's *check state*.

        Tendermint's mempool keeps its own sequence view (chain sequence
        plus already-admitted pending txs), which is what lets Hermes queue
        several sequential transactions for one block.  A client that signs
        with the stale on-chain sequence — like the Gaia CLI the paper used
        first — fails here with ``account sequence mismatch``.
        """
        account = self.accounts.get(tx.signer_address)
        if account is None:
            raise ChainError(f"unknown account {tx.signer_address}", code=2)
        if tx.sequence != expected_sequence:
            raise SequenceMismatchError(
                expected=expected_sequence,
                got=tx.sequence,
                account=tx.signer_address,
            )
        if not GLOBAL_SIGNATURES.verify(tx.public_key, tx.sign_bytes(), tx.signature):
            raise ChainError("signature verification failed", code=4)
        return AnteResult(gas_wanted=tx.gas_limit)
