"""Cosmos-SDK-style application layer: accounts, bank, gas, transactions,
ante handler and the Gaia application."""

from repro.cosmos.accounts import (
    AccountKeeper,
    AccountView,
    AddressIndex,
    BaseAccount,
    Wallet,
    derive_address,
)
from repro.cosmos.app import FEE_DENOM, TRANSFER_DENOM, GaiaApp
from repro.cosmos.bank import BankKeeper, module_address
from repro.cosmos.denom import DenomRegistry, DenomTrace
from repro.cosmos.gas import GasMeter, GasSchedule
from repro.cosmos.journal import Journal
from repro.cosmos.tx import MsgSend, Tx, TxFactory, chunk_msgs

__all__ = [
    "AccountKeeper",
    "AccountView",
    "AddressIndex",
    "BankKeeper",
    "BaseAccount",
    "DenomRegistry",
    "DenomTrace",
    "FEE_DENOM",
    "GaiaApp",
    "GasMeter",
    "GasSchedule",
    "Journal",
    "MsgSend",
    "TRANSFER_DENOM",
    "Tx",
    "TxFactory",
    "Wallet",
    "chunk_msgs",
    "derive_address",
    "module_address",
]
