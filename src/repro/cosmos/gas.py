"""Gas metering and fees.

Message gas figures are calibrated to the paper's measurements: a 100-message
transaction consumes on average 3 669 161 gas for transfers, 7 238 699 for
receives and 3 107 462 for acknowledgements, varying by at most 1 %, 4.1 %
and 7.6 % respectively.  The per-message draw reproduces both the averages
and the variance bands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro import calibration as cal
from repro.errors import OutOfGasError
from repro.sim.rng import RngRegistry


@dataclass(slots=True)
class GasMeter:
    """Tracks gas consumption for one transaction execution."""

    limit: int
    consumed: int = 0

    def consume(self, amount: int, descriptor: str = "") -> None:
        self.consumed += amount
        if self.consumed > self.limit:
            raise OutOfGasError(limit=self.limit, used=self.consumed)

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.consumed)


class GasSchedule:
    """Per-message gas costs with calibrated jitter."""

    __slots__ = ("cal", "_rng")

    def __init__(
        self,
        calibration: Optional[cal.Calibration] = None,
        rng: Optional[random.Random] = None,
    ):
        self.cal = calibration or cal.DEFAULT_CALIBRATION
        # Experiments inject a stream from the testbed's RngRegistry; a
        # default-constructed schedule still derives its jitter through the
        # registry so standalone uses replay deterministically too.
        if rng is None:
            rng = RngRegistry(0).stream("gas-schedule/default")
        self._rng = rng

    def _jittered(self, base: int, band: float) -> int:
        if band <= 0:
            return base
        return int(base * (1.0 + self._rng.uniform(-band, band)))

    def gas_for_msg(self, kind: str) -> int:
        """Sampled execution gas for one message of the given kind."""
        if kind == "transfer":
            return self._jittered(self.cal.gas_per_transfer_msg, cal.GAS_JITTER_TRANSFER)
        if kind == "recv_packet":
            return self._jittered(self.cal.gas_per_recv_msg, cal.GAS_JITTER_RECV)
        if kind in ("acknowledgement", "timeout"):
            return self._jittered(self.cal.gas_per_ack_msg, cal.GAS_JITTER_ACK)
        if kind == "update_client":
            return 80_000
        # Handshake and administrative messages.
        return 60_000

    def estimate_tx_gas(self, msg_kinds: list[str]) -> int:
        """Deterministic (jitter-free) estimate used for tx gas limits."""
        total = self.cal.gas_tx_overhead
        for kind in msg_kinds:
            if kind == "transfer":
                total += self.cal.gas_per_transfer_msg
            elif kind == "recv_packet":
                total += self.cal.gas_per_recv_msg
            elif kind in ("acknowledgement", "timeout"):
                total += self.cal.gas_per_ack_msg
            elif kind == "update_client":
                total += 80_000
            else:
                total += 60_000
        return total

    def fee_for_gas(self, gas: int) -> float:
        return gas * self.cal.gas_price
