"""ICS-20 denomination traces.

Tokens moved across a channel are represented on the destination chain by a
*voucher* denom ``ibc/<SHA256(trace path)>`` where the trace path prefixes
the base denomination with every (port, channel) hop, e.g.
``transfer/channel-0/uatom``.

This is why — as the paper notes in §IV-A — tokens sent through *different*
channels are NOT fungible with each other: their traces, hence their hashes,
differ.  Tests pin that property.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tendermint.crypto import sha256


@dataclass(frozen=True)
class DenomTrace:
    """A trace path (sequence of port/channel hops) plus the base denom."""

    path: tuple[tuple[str, str], ...]  # ((port, channel), ...) outermost first
    base_denom: str

    @property
    def is_native(self) -> bool:
        return not self.path

    def full_path(self) -> str:
        hops = "/".join(f"{port}/{channel}" for port, channel in self.path)
        return f"{hops}/{self.base_denom}" if hops else self.base_denom

    def ibc_denom(self) -> str:
        """The on-chain voucher denomination."""
        if self.is_native:
            return self.base_denom
        digest = sha256(self.full_path().encode()).hex().upper()
        return f"ibc/{digest}"

    def prepend(self, port: str, channel: str) -> "DenomTrace":
        """Trace after receiving this token over (port, channel)."""
        return DenomTrace(path=((port, channel),) + self.path, base_denom=self.base_denom)

    def unwind(self) -> "DenomTrace":
        """Trace after the token returns over its outermost hop."""
        if self.is_native:
            raise ValueError("cannot unwind a native denom")
        return DenomTrace(path=self.path[1:], base_denom=self.base_denom)

    def outermost_hop(self) -> tuple[str, str]:
        if self.is_native:
            raise ValueError("native denom has no hops")
        return self.path[0]

    @classmethod
    def parse(cls, full_path: str) -> "DenomTrace":
        """Parse ``port/channel/.../base`` into a trace."""
        parts = full_path.split("/")
        hops: list[tuple[str, str]] = []
        index = 0
        while index + 1 < len(parts) and parts[index + 1].startswith("channel-"):
            hops.append((parts[index], parts[index + 1]))
            index += 2
        base = "/".join(parts[index:])
        if not base:
            raise ValueError(f"trace {full_path!r} has no base denom")
        return cls(path=tuple(hops), base_denom=base)

    @classmethod
    def native(cls, base_denom: str) -> "DenomTrace":
        return cls(path=(), base_denom=base_denom)


class DenomRegistry:
    """Per-chain map from voucher hash denoms back to their traces."""

    def __init__(self) -> None:
        self._traces: dict[str, DenomTrace] = {}

    def register(self, trace: DenomTrace) -> str:
        denom = trace.ibc_denom()
        existing = self._traces.get(denom)
        if existing is not None and existing != trace:
            raise ValueError(f"hash collision for denom {denom}")
        self._traces[denom] = trace
        return denom

    def resolve(self, denom: str) -> DenomTrace:
        """Trace for an on-chain denom (native denoms resolve trivially)."""
        if not denom.startswith("ibc/"):
            return DenomTrace.native(denom)
        trace = self._traces.get(denom)
        if trace is None:
            raise KeyError(f"unknown voucher denom {denom}")
        return trace

    def known_vouchers(self) -> list[str]:
        return sorted(self._traces)
