"""The bank module: balances, transfers, minting and burning.

Module accounts (e.g. per-channel ICS-20 escrow accounts) are ordinary
addresses derived from a name, mirroring the SDK's module account scheme.
An invariant — total supply per denom equals the sum of balances — is
maintained by construction and checked by property tests.

Balances live in per-denom ``array('q')`` columns indexed by the shared
:class:`~repro.cosmos.accounts.AddressIndex`, not per-address dicts: a
denom held by a million accounts costs eight bytes per account.  The
rollback journal records ``(column, index, previous)`` triples — an array
indexes exactly like the dicts :meth:`Journal.record_kv` was built for,
and a balance's previous value is never ``None``, so the journal's
restore branch applies unchanged.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Iterable, Optional, Sequence

from repro.cosmos.accounts import AddressIndex
from repro.cosmos.journal import Journaled
from repro.errors import InsufficientFundsError
from repro.tendermint.crypto import sha256


def module_address(name: str) -> str:
    """Deterministic address of a module account."""
    return sha256(b"module/" + name.encode())[:20].hex()


class BankKeeper(Journaled):
    """Balances per (address, denom), with supply tracking.

    When bound to a provable ``store`` (the application does this), every
    balance write is mirrored under ``balances/<address>/<denom>`` so the
    chain's app hash commits to bank state, as on a real chain.
    """

    def __init__(
        self, store=None, index: Optional[AddressIndex] = None
    ) -> None:
        self.index = index if index is not None else AddressIndex()
        self._columns: dict[str, array] = {}
        self._supply: dict[str, int] = defaultdict(int)
        self._store = store

    def bind_store(self, store) -> None:
        self._store = store

    def _column(self, denom: str, idx: int) -> array:
        """The denom's balance column, grown (zero-filled) to cover ``idx``."""
        column = self._columns.get(denom)
        if column is None:
            column = array("q")
            self._columns[denom] = column
        short = idx + 1 - len(column)
        if short > 0:
            column.frombytes(bytes(8 * short))
        return column

    def _set_balance(self, address: str, denom: str, value: int) -> None:
        idx = self.index.intern(address)
        column = self._column(denom, idx)
        if self.journal is not None:
            # Balances default to 0, so the undo value is never None and
            # the closure-free journal entry restores it exactly.
            self.journal.record_kv(column, idx, column[idx])
        column[idx] = value
        if self._store is not None:
            # The store keeps its own journal; no double bookkeeping here.
            self._store.set(
                f"balances/{address}/{denom}".encode(), str(value).encode()
            )

    def _set_supply(self, denom: str, value: int) -> None:
        if self.journal is not None:
            self.journal.record_kv(self._supply, denom, self._supply[denom])
        self._supply[denom] = value

    # -- queries --------------------------------------------------------------

    def balance(self, address: str, denom: str) -> int:
        idx = self.index.lookup(address)
        if idx is None:
            return 0
        column = self._columns.get(denom)
        if column is None or idx >= len(column):
            return 0
        return column[idx]

    def balances(self, address: str) -> dict[str, int]:
        idx = self.index.lookup(address)
        if idx is None:
            return {}
        return {
            denom: column[idx]
            for denom, column in self._columns.items()
            if idx < len(column) and column[idx] > 0
        }

    def supply(self, denom: str) -> int:
        return self._supply[denom]

    def total_of(self, denom: str) -> int:
        """Sum of balances for a denom (== supply by invariant)."""
        column = self._columns.get(denom)
        return sum(column) if column is not None else 0

    # -- state transitions ------------------------------------------------------

    def mint(self, address: str, denom: str, amount: int) -> None:
        self._require_positive(amount)
        self._set_balance(address, denom, self.balance(address, denom) + amount)
        self._set_supply(denom, self._supply[denom] + amount)

    def burn(self, address: str, denom: str, amount: int) -> None:
        self._require_positive(amount)
        self._debit(address, denom, amount)
        self._set_supply(denom, self._supply[denom] - amount)

    def send(self, sender: str, recipient: str, denom: str, amount: int) -> None:
        self._require_positive(amount)
        self._debit(sender, denom, amount)
        self._set_balance(recipient, denom, self.balance(recipient, denom) + amount)

    def _debit(self, address: str, denom: str, amount: int) -> None:
        balance = self.balance(address, denom)
        if balance < amount:
            raise InsufficientFundsError(
                f"{address} has {balance}{denom}, needs {amount}{denom}"
            )
        self._set_balance(address, denom, balance - amount)

    @staticmethod
    def _require_positive(amount: int) -> None:
        if amount <= 0:
            raise InsufficientFundsError(f"amount must be positive, got {amount}")

    def genesis_mint_many(
        self, addresses: Sequence[str], denom: str, amount: int
    ) -> None:
        """Bulk genesis funding: every address gets ``amount`` of ``denom``.

        Fills the balance column directly and skips the provable-store
        mirror — a million genesis balances would otherwise dominate the
        store.  Valid only at genesis (no journal attached); runtime
        writes store absolute values, so any balance the simulation later
        touches lands in the store as usual.
        """
        self._require_positive(amount)
        if self.journal is not None:
            raise RuntimeError("genesis_mint_many is a genesis-only operation")
        if not addresses:
            return
        indices = [self.index.intern(address) for address in addresses]
        column = self._column(denom, max(indices))
        for idx in indices:
            column[idx] += amount
        self._supply[denom] += amount * len(addresses)

    # -- invariants ----------------------------------------------------------

    def check_supply_invariant(self, denoms: Iterable[str]) -> bool:
        """True if supply bookkeeping matches summed balances."""
        return all(self.total_of(d) == self._supply[d] for d in denoms)
