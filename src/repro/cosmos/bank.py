"""The bank module: balances, transfers, minting and burning.

Module accounts (e.g. per-channel ICS-20 escrow accounts) are ordinary
addresses derived from a name, mirroring the SDK's module account scheme.
An invariant — total supply per denom equals the sum of balances — is
maintained by construction and checked by property tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.cosmos.journal import Journaled
from repro.errors import InsufficientFundsError
from repro.tendermint.crypto import sha256


def module_address(name: str) -> str:
    """Deterministic address of a module account."""
    return sha256(b"module/" + name.encode())[:20].hex()


class BankKeeper(Journaled):
    """Balances per (address, denom), with supply tracking.

    When bound to a provable ``store`` (the application does this), every
    balance write is mirrored under ``balances/<address>/<denom>`` so the
    chain's app hash commits to bank state, as on a real chain.
    """

    def __init__(self, store=None) -> None:
        self._balances: dict[str, dict[str, int]] = defaultdict(dict)
        self._supply: dict[str, int] = defaultdict(int)
        self._store = store

    def bind_store(self, store) -> None:
        self._store = store

    def _set_balance(self, address: str, denom: str, value: int) -> None:
        if self.journal is not None:
            # Balances default to 0, so the undo value is never None and
            # the closure-free journal entry restores it exactly.
            self.journal.record_kv(
                self._balances[address], denom, self.balance(address, denom)
            )
        self._balances[address][denom] = value
        if self._store is not None:
            # The store keeps its own journal; no double bookkeeping here.
            self._store.set(
                f"balances/{address}/{denom}".encode(), str(value).encode()
            )

    def _set_supply(self, denom: str, value: int) -> None:
        if self.journal is not None:
            self.journal.record_kv(self._supply, denom, self._supply[denom])
        self._supply[denom] = value

    # -- queries --------------------------------------------------------------

    def balance(self, address: str, denom: str) -> int:
        return self._balances[address].get(denom, 0)

    def balances(self, address: str) -> dict[str, int]:
        return {d: a for d, a in self._balances[address].items() if a > 0}

    def supply(self, denom: str) -> int:
        return self._supply[denom]

    def total_of(self, denom: str) -> int:
        """Sum of balances for a denom (== supply by invariant)."""
        return sum(b.get(denom, 0) for b in self._balances.values())

    # -- state transitions ------------------------------------------------------

    def mint(self, address: str, denom: str, amount: int) -> None:
        self._require_positive(amount)
        self._set_balance(address, denom, self.balance(address, denom) + amount)
        self._set_supply(denom, self._supply[denom] + amount)

    def burn(self, address: str, denom: str, amount: int) -> None:
        self._require_positive(amount)
        self._debit(address, denom, amount)
        self._set_supply(denom, self._supply[denom] - amount)

    def send(self, sender: str, recipient: str, denom: str, amount: int) -> None:
        self._require_positive(amount)
        self._debit(sender, denom, amount)
        self._set_balance(recipient, denom, self.balance(recipient, denom) + amount)

    def _debit(self, address: str, denom: str, amount: int) -> None:
        balance = self.balance(address, denom)
        if balance < amount:
            raise InsufficientFundsError(
                f"{address} has {balance}{denom}, needs {amount}{denom}"
            )
        self._set_balance(address, denom, balance - amount)

    @staticmethod
    def _require_positive(amount: int) -> None:
        if amount <= 0:
            raise InsufficientFundsError(f"amount must be positive, got {amount}")

    # -- invariants ----------------------------------------------------------

    def check_supply_invariant(self, denoms: Iterable[str]) -> bool:
        """True if supply bookkeeping matches summed balances."""
        return all(self.total_of(d) == self._supply[d] for d in denoms)
