"""The Gaia application: a Cosmos-SDK-style ABCI app with bank + IBC.

This is the application layer of the paper's testbed chains (Gaia v7).  It
implements the ABCI protocol for the consensus engine:

* ``CheckTx`` — ante validation for mempool admission (sequence checks
  against the mempool's view are driven by the mempool itself).
* ``DeliverTx`` — ante (sequence increment + fee deduction, persisted even
  when message execution later fails, exactly like the SDK), then atomic
  message execution under a rollback journal.
* ``Commit`` — commits the provable store; the resulting app hash is what
  counterparty light clients verify proofs against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro import calibration as cal
from repro.cosmos.accounts import AccountKeeper, AddressIndex, Wallet
from repro.cosmos.ante import AnteHandler
from repro.cosmos.bank import BankKeeper
from repro.cosmos.gas import GasMeter, GasSchedule
from repro.cosmos.journal import Journal
from repro.cosmos.tx import MsgSend, Tx
from repro.errors import ChainError, OutOfGasError
from repro.ibc.module import CounterpartyChainInfo, ExecContext, IbcModule
from repro.ibc.msgs import (
    MsgAcknowledgement,
    MsgChannelOpenAck,
    MsgChannelOpenConfirm,
    MsgChannelOpenInit,
    MsgChannelOpenTry,
    MsgConnectionOpenAck,
    MsgConnectionOpenConfirm,
    MsgConnectionOpenInit,
    MsgConnectionOpenTry,
    MsgCreateClient,
    MsgRecvPacket,
    MsgTimeout,
    MsgTransfer,
    MsgUpdateClient,
)
from repro.ibc.proofs import PROOF_MODE_MERKLE
from repro.ibc.transfer import TransferApp
from repro.sim.rng import RngRegistry
from repro.tendermint.abci import (
    AbciEvent,
    ResponseCheckTx,
    ResponseDeliverTx,
    ResponseEndBlock,
)
from repro.tendermint.crypto import hash_value
from repro.tendermint.merkle import ProvableStore
from repro.tendermint.types import Evidence, Header

#: The fee/staking token of the simulated Gaia chains.
FEE_DENOM = "stake"
#: The token moved by the benchmark workload.
TRANSFER_DENOM = "uatom"


@dataclass
class FeePool:
    collected: float = 0.0


class GaiaApp:
    """One chain's application state and ABCI handlers."""

    def __init__(
        self,
        chain_id: str,
        calibration: Optional[cal.Calibration] = None,
        proof_mode: str = PROOF_MODE_MERKLE,
        rng: Optional[random.Random] = None,
    ):
        self.chain_id = chain_id
        self.cal = calibration or cal.DEFAULT_CALIBRATION
        # Auth and bank share one address interner so both keepers index
        # their array columns with the same dense integers.
        self.address_index = AddressIndex()
        self.accounts = AccountKeeper(index=self.address_index)
        self.store = ProvableStore()
        self.bank = BankKeeper(store=self.store, index=self.address_index)
        # The testbed injects a named stream from its RngRegistry (see
        # tendermint.node.Chain); default-constructed apps derive a
        # deterministic per-chain stream instead of a hard-coded seed.
        if rng is None:
            rng = RngRegistry(1).stream(f"gas/standalone/{chain_id}")
        self.gas_schedule = GasSchedule(self.cal, rng=rng)
        self.ante = AnteHandler(self.accounts)
        self.ibc = IbcModule(
            chain_id=chain_id,
            store=self.store,
            proof_mode=proof_mode,
            event_bytes=self.cal.event_bytes,
        )
        self.transfer = TransferApp(self.ibc, self.bank)
        self.fee_pool = FeePool()
        self.proof_mode = proof_mode

        self._counterparties: dict[str, CounterpartyChainInfo] = {}
        self._ctx = ExecContext(height=0, time=0.0)
        self._block_events: list[AbciEvent] = []
        self._commit_counter = 0

    # ------------------------------------------------------------------
    # Genesis helpers
    # ------------------------------------------------------------------

    def genesis_account(
        self, wallet: Wallet, coins: Optional[dict[str, int]] = None
    ) -> None:
        """Create an account at genesis with the given balances."""
        self.accounts.get_or_create(wallet.public_key)
        for denom, amount in (coins or {}).items():
            if amount > 0:
                self.bank.mint(wallet.address, denom, amount)

    def genesis_accounts_bulk(
        self, addresses: Sequence[str], coins: Optional[dict[str, int]] = None
    ) -> None:
        """Create many genesis accounts with identical balances, lazily.

        The accounts carry no stored key material (validation uses the
        public key each transaction presents) and their balances go
        straight into the bank's array columns — the path that lets a
        million-account population fit in memory.
        """
        self.accounts.create_many(addresses)
        for denom, amount in (coins or {}).items():
            if amount > 0:
                self.bank.genesis_mint_many(addresses, denom, amount)

    def register_counterparty(self, info: CounterpartyChainInfo) -> None:
        """Make a counterparty chain's public info available for
        ``MsgCreateClient`` handling."""
        self._counterparties[info.chain_id] = info

    # ------------------------------------------------------------------
    # ABCI: CheckTx
    # ------------------------------------------------------------------

    def check_tx(
        self, tx: Tx, expected_sequence: Optional[int] = None
    ) -> ResponseCheckTx:
        """Mempool admission: signature, sequence, fee affordability."""
        try:
            if expected_sequence is None:
                self.ante.validate(tx, check_only=True)
            else:
                self.ante.validate_for_mempool(tx, expected_sequence)
            self._check_fee(tx)
        except ChainError as exc:
            return ResponseCheckTx(
                code=exc.code, log=str(exc), codespace=exc.codespace
            )
        return ResponseCheckTx(code=0, gas_wanted=tx.gas_limit)

    def _check_fee(self, tx: Tx) -> None:
        balance = self.bank.balance(tx.signer_address, FEE_DENOM)
        if balance < tx.fee:
            raise ChainError(
                f"insufficient fee: {balance} < {tx.fee} {FEE_DENOM}",
                code=13,
            )

    # ------------------------------------------------------------------
    # ABCI: block execution
    # ------------------------------------------------------------------

    def begin_block(self, header: Header, evidence: Sequence[Evidence]) -> None:
        self._ctx = ExecContext(height=header.height, time=header.time)
        self._block_events = []
        # Evidence handling: a real chain slashes here.  We record it so
        # tests can assert evidence reached the application.
        for item in evidence:
            self._block_events.append(
                AbciEvent(
                    type="slash",
                    attributes=(("validator", item.validator_address),),
                    size_bytes=100,
                )
            )

    def deliver_tx(self, tx: Tx) -> ResponseDeliverTx:
        """Execute one transaction atomically (SDK semantics)."""
        try:
            self.ante.validate(tx, check_only=False)
        except ChainError as exc:
            return ResponseDeliverTx(
                code=exc.code,
                log=str(exc),
                gas_wanted=tx.gas_limit,
                gas_used=self.cal.gas_tx_overhead,
                codespace=exc.codespace,
            )
        # Fees are deducted after ante and are kept even if messages fail.
        try:
            fee_amount = int(tx.fee)
            if fee_amount > 0:
                self.bank.burn(tx.signer_address, FEE_DENOM, fee_amount)
                self.fee_pool.collected += fee_amount
        except ChainError as exc:
            return ResponseDeliverTx(
                code=13,
                log=f"insufficient fees: {exc}",
                gas_wanted=tx.gas_limit,
                gas_used=self.cal.gas_tx_overhead,
            )

        meter = GasMeter(limit=tx.gas_limit)
        meter.consume(self.cal.gas_tx_overhead, "tx overhead")
        journal = Journal()
        self._attach_journal(journal)
        events: list[AbciEvent] = []
        try:
            ctx = ExecContext(
                height=self._ctx.height, time=self._ctx.time, signer=tx.signer_address
            )
            for msg in tx.msgs:
                kind = getattr(msg, "kind", "unknown")
                meter.consume(self.gas_schedule.gas_for_msg(kind), kind)
                events.extend(self._dispatch(msg, ctx))
        except (ChainError, OutOfGasError) as exc:
            journal.rollback()
            code = exc.code if isinstance(exc, ChainError) else 11
            return ResponseDeliverTx(
                code=code,
                log=str(exc),
                gas_wanted=tx.gas_limit,
                gas_used=meter.consumed,
                codespace=getattr(exc, "codespace", "sdk"),
            )
        except Exception as exc:  # noqa: BLE001 - IBC and app errors
            journal.rollback()
            return ResponseDeliverTx(
                code=1,
                log=f"{type(exc).__name__}: {exc}",
                gas_wanted=tx.gas_limit,
                gas_used=meter.consumed,
                codespace="ibc",
            )
        finally:
            self._attach_journal(None)
        journal.commit()
        return ResponseDeliverTx(
            code=0,
            gas_wanted=tx.gas_limit,
            gas_used=meter.consumed,
            events=events,
        )

    def _attach_journal(self, journal: Optional[Journal]) -> None:
        self.bank.journal = journal
        self.ibc.journal = journal
        self.store.journal = journal

    def _dispatch(self, msg: Any, ctx: ExecContext) -> list[AbciEvent]:
        """Route one message to its module handler."""
        if isinstance(msg, MsgTransfer):
            _packet, events = self.transfer.msg_transfer(msg, ctx)
            return events
        if isinstance(msg, MsgRecvPacket):
            return self.ibc.recv_packet(msg, ctx)
        if isinstance(msg, MsgAcknowledgement):
            return self.ibc.acknowledge_packet(msg, ctx)
        if isinstance(msg, MsgTimeout):
            return self.ibc.timeout_packet(msg, ctx)
        if isinstance(msg, MsgUpdateClient):
            return self.ibc.update_client(msg, ctx)
        if isinstance(msg, MsgCreateClient):
            info = self._counterparties.get(msg.chain_id)
            if info is None:
                raise ChainError(f"unknown counterparty chain {msg.chain_id!r}")
            return self.ibc.handle_create_client(msg, ctx, info)
        if isinstance(msg, MsgConnectionOpenInit):
            _cid, events = self.ibc.connection_open_init(msg, ctx)
            return events
        if isinstance(msg, MsgConnectionOpenTry):
            _cid, events = self.ibc.connection_open_try(msg, ctx)
            return events
        if isinstance(msg, MsgConnectionOpenAck):
            return self.ibc.connection_open_ack(msg, ctx)
        if isinstance(msg, MsgConnectionOpenConfirm):
            return self.ibc.connection_open_confirm(msg, ctx)
        if isinstance(msg, MsgChannelOpenInit):
            _cid, events = self.ibc.channel_open_init(msg, ctx)
            return events
        if isinstance(msg, MsgChannelOpenTry):
            _cid, events = self.ibc.channel_open_try(msg, ctx)
            return events
        if isinstance(msg, MsgChannelOpenAck):
            return self.ibc.channel_open_ack(msg, ctx)
        if isinstance(msg, MsgChannelOpenConfirm):
            return self.ibc.channel_open_confirm(msg, ctx)
        if isinstance(msg, MsgSend):
            if msg.sender != ctx.signer:
                raise ChainError("bank send sender must be the tx signer", code=4)
            self.bank.send(msg.sender, msg.recipient, msg.denom, msg.amount)
            return [
                AbciEvent(
                    type="transfer_bank",
                    attributes=(
                        ("sender", msg.sender),
                        ("recipient", msg.recipient),
                        ("amount", f"{msg.amount}{msg.denom}"),
                    ),
                    size_bytes=150,
                )
            ]
        raise ChainError(f"unroutable message kind {getattr(msg, 'kind', '?')!r}")

    def end_block(self, height: int) -> ResponseEndBlock:
        return ResponseEndBlock(events=list(self._block_events))

    def commit(self) -> bytes:
        """Commit state; returns the new app hash."""
        self._commit_counter += 1
        if self.proof_mode == PROOF_MODE_MERKLE:
            return self.store.commit()
        # Stub mode: cheap deterministic root (no merkle rebuild).
        root = hash_value(
            {"n": self._commit_counter, "size": len(self.store), "chain": self.chain_id}
        )
        self.store.commit_cheap(root)
        return root

    # ------------------------------------------------------------------
    # Query helpers used by the RPC layer
    # ------------------------------------------------------------------

    def account_sequence(self, address: str) -> int:
        return self.accounts.sequence_of(address)

    @property
    def current_height(self) -> int:
        return self._ctx.height
