"""Transaction-scoped state journaling.

The Cosmos SDK executes each transaction against a cached store and discards
the cache if any message fails, making transactions atomic.  We get the same
guarantee with an undo journal: while a transaction executes, every state
mutation registers an inverse operation; on failure the journal rolls back
in reverse order.

This matters for fidelity: when two relayers race (paper §IV-A), the loser's
*entire* transaction of 100 ``MsgRecvPacket`` fails with ``packet messages
are redundant`` — none of its messages may leave partial state behind.
"""

from __future__ import annotations

from typing import Callable, Optional


class Journal:
    """Collects undo operations for one transaction execution."""

    __slots__ = ("_undo",)

    def __init__(self) -> None:
        self._undo: list = []

    def record(self, undo: Callable[[], None]) -> None:
        self._undo.append(undo)

    def record_kv(self, mapping: dict, key, previous) -> None:
        """Closure-free undo for a plain dict write.

        ``previous is None`` means the key was absent.  Hot stores record
        thousands of writes per block; a tuple here replaces the lambda
        allocation that :meth:`record` would need.
        """
        self._undo.append((mapping, key, previous))

    def rollback(self) -> None:
        """Revert all recorded mutations, most recent first."""
        for undo in reversed(self._undo):
            if type(undo) is tuple:
                mapping, key, previous = undo
                if previous is None:
                    mapping.pop(key, None)
                else:
                    mapping[key] = previous
            else:
                undo()
        self._undo.clear()

    def commit(self) -> None:
        """Discard the undo log, keeping the mutations."""
        self._undo.clear()

    def __len__(self) -> int:
        return len(self._undo)


class Journaled:
    """Mixin for keepers that support transaction-scoped rollback.

    The application sets ``journal`` before executing a transaction's
    messages and clears it afterwards; mutating methods call
    :meth:`_journal_undo` with their inverse.
    """

    journal: Optional[Journal] = None

    def _journal_undo(self, undo: Callable[[], None]) -> None:
        if self.journal is not None:
            self.journal.record(undo)
