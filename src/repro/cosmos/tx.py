"""Transactions: signed containers of up to ``MAX_MSGS_PER_TX`` messages.

The paper's workload packs 100 ``MsgTransfer`` messages per transaction —
the Hermes maximum — to work around the one-transaction-per-account-per-block
limit.  ``Tx`` models exactly the fields that matter for that dynamic:
signer, sequence, gas, fee and the message list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro import calibration as cal
from repro.cosmos.accounts import Wallet
from repro.errors import ChainError
from repro.tendermint.crypto import PublicKey, hash_value


@dataclass(frozen=True)
class MsgSend:
    """Plain bank transfer (used by examples and non-IBC tests)."""

    kind = "bank_send"
    sender: str
    recipient: str
    denom: str
    amount: int


@dataclass
class Tx:
    """A signed transaction.

    ``hash``/``size_bytes`` satisfy Tendermint's ``TxLike`` protocol; the
    rest is consumed by the ante handler and the application.

    ``nonce`` distinguishes rebuilt transactions that share a signer and
    sequence (e.g. a relayer re-signing after a sequence mismatch).  It is
    issued per :class:`TxFactory` — a process-global counter would leak
    state between runs and change every tx hash on replay.
    """

    msgs: list[Any]
    signer_address: str
    public_key: PublicKey
    sequence: int
    gas_limit: int
    fee: float
    signature: bytes
    memo: str = ""
    nonce: int = 0

    def __post_init__(self) -> None:
        if not self.msgs:
            raise ChainError("transaction must contain at least one message")
        self._hash = hash_value(
            {
                "signer": self.signer_address,
                "sequence": self.sequence,
                "gas": self.gas_limit,
                "memo": self.memo,
                "nonce": self.nonce,
                "n_msgs": len(self.msgs),
                "kinds": [getattr(m, "kind", "unknown") for m in self.msgs],
            }
        )

    @property
    def hash(self) -> bytes:
        return self._hash

    @property
    def msg_count(self) -> int:
        return len(self.msgs)

    @property
    def size_bytes(self) -> int:
        return cal.TX_BYTES_OVERHEAD + cal.TX_BYTES_PER_MSG * len(self.msgs)

    def msg_kinds(self) -> list[str]:
        return [getattr(m, "kind", "unknown") for m in self.msgs]

    def sign_bytes(self) -> bytes:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = self.msg_kinds()
        head = kinds[0] if kinds else "?"
        return (
            f"<Tx {self.hash.hex()[:8]} {len(self.msgs)}x{head} "
            f"seq={self.sequence}>"
        )


class TxFactory:
    """Builds and signs transactions for one wallet.

    Tracks a *local* sequence number the way client software does: it is
    incremented optimistically on signing and must be re-synced from the
    chain after a failure — the exact mechanism behind the paper's
    ``account sequence mismatch`` errors.
    """

    __slots__ = (
        "wallet",
        "max_msgs_per_tx",
        "gas_price",
        "local_sequence",
        "_nonces",
    )

    def __init__(
        self,
        wallet: Wallet,
        max_msgs_per_tx: int = cal.MAX_MSGS_PER_TX,
        gas_price: float = cal.GAS_PRICE,
    ):
        self.wallet = wallet
        self.max_msgs_per_tx = max_msgs_per_tx
        self.gas_price = gas_price
        self.local_sequence = 0
        self._nonces = itertools.count()

    def build(
        self,
        msgs: Sequence[Any],
        gas_limit: int,
        sequence: Optional[int] = None,
        memo: str = "",
    ) -> Tx:
        """Sign a transaction; uses and bumps the local sequence by default."""
        if len(msgs) > self.max_msgs_per_tx:
            raise ChainError(
                f"{len(msgs)} messages exceeds the {self.max_msgs_per_tx} "
                f"per-transaction limit"
            )
        if sequence is None:
            sequence = self.local_sequence
            self.local_sequence += 1
        tx = Tx(
            msgs=list(msgs),
            signer_address=self.wallet.address,
            public_key=self.wallet.public_key,
            sequence=sequence,
            gas_limit=gas_limit,
            fee=gas_limit * self.gas_price,
            signature=b"",
            memo=memo,
            nonce=next(self._nonces),
        )
        signature = self.wallet.private_key.sign(tx.sign_bytes())
        tx.signature = signature
        return tx

    def resync_sequence(self, on_chain_sequence: int) -> None:
        """Reset the local sequence from chain state (after mismatch errors)."""
        self.local_sequence = on_chain_sequence


def chunk_msgs(msgs: Sequence[Any], chunk_size: int) -> list[list[Any]]:
    """Split messages into transaction-sized chunks, preserving order."""
    if chunk_size < 1:
        raise ChainError(f"chunk size must be >= 1, got {chunk_size}")
    return [list(msgs[i : i + chunk_size]) for i in range(0, len(msgs), chunk_size)]
