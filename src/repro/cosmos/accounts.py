"""Accounts and sequence numbers.

Cosmos chains enforce transaction ordering per account via sequence numbers
(replay protection).  The consequence the paper wrestles with — only one
transaction per account per block, because a second one would carry a
not-yet-incremented sequence — falls out of the ante handler checking the
values tracked here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ChainError
from repro.tendermint.crypto import PrivateKey, PublicKey, new_keypair


@dataclass
class BaseAccount:
    """On-chain account state."""

    address: str
    public_key: PublicKey
    account_number: int
    sequence: int = 0


@dataclass
class Wallet:
    """Client-side key material for signing transactions."""

    name: str
    private_key: PrivateKey
    public_key: PublicKey

    @property
    def address(self) -> str:
        return self.public_key.address

    @classmethod
    def named(cls, name: str) -> "Wallet":
        priv, pub = new_keypair(name)
        return cls(name=name, private_key=priv, public_key=pub)


class AccountKeeper:
    """The auth module's account store."""

    def __init__(self) -> None:
        self._accounts: dict[str, BaseAccount] = {}
        self._next_number = 0

    def create(self, public_key: PublicKey) -> BaseAccount:
        address = public_key.address
        if address in self._accounts:
            raise ChainError(f"account {address} already exists")
        account = BaseAccount(
            address=address,
            public_key=public_key,
            account_number=self._next_number,
        )
        self._next_number += 1
        self._accounts[address] = account
        return account

    def get(self, address: str) -> Optional[BaseAccount]:
        return self._accounts.get(address)

    def get_or_create(self, public_key: PublicKey) -> BaseAccount:
        account = self._accounts.get(public_key.address)
        if account is None:
            account = self.create(public_key)
        return account

    def require(self, address: str) -> BaseAccount:
        account = self._accounts.get(address)
        if account is None:
            raise ChainError(f"unknown account {address}", code=2)
        return account

    def increment_sequence(self, address: str) -> None:
        self.require(address).sequence += 1

    def __len__(self) -> int:
        return len(self._accounts)
