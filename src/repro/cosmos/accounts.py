"""Accounts and sequence numbers.

Cosmos chains enforce transaction ordering per account via sequence numbers
(replay protection).  The consequence the paper wrestles with — only one
transaction per account per block, because a second one would carry a
not-yet-incremented sequence — falls out of the ante handler checking the
values tracked here.

The keeper stores account state in flat ``array('q')`` columns indexed by
an :class:`AddressIndex` (a string-interning table shared with the bank
keeper), not one object per account.  A million-account population then
costs a few dozen bytes per account instead of a kilobyte: the address
string and its index slot, two machine words of column state, and *no* key
objects — key material stays lazy (see :func:`derive_address`) until an
account actually signs something.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ChainError
from repro.tendermint.crypto import PrivateKey, PublicKey, new_keypair, sha256


class AddressIndex:
    """Interns address strings to dense integer indices.

    One shared instance per chain app maps every address the auth and bank
    modules touch to a stable small integer, so both keepers can use flat
    array columns instead of per-address dictionaries.  Indices are
    allocated in first-touch order and never reused.
    """

    __slots__ = ("_slots", "_addresses")

    def __init__(self) -> None:
        self._slots: dict[str, int] = {}
        self._addresses: list[str] = []

    def intern(self, address: str) -> int:
        """Index for ``address``, allocating one on first sight."""
        idx = self._slots.get(address)
        if idx is None:
            idx = len(self._addresses)
            self._slots[address] = idx
            self._addresses.append(address)
        return idx

    def lookup(self, address: str) -> Optional[int]:
        """Index for ``address``, or None if never interned."""
        return self._slots.get(address)

    def address_of(self, idx: int) -> str:
        return self._addresses[idx]

    def __contains__(self, address: str) -> bool:
        return address in self._slots

    def __len__(self) -> int:
        return len(self._addresses)


def derive_address(name: str) -> str:
    """The address :meth:`Wallet.named` would produce for ``name``.

    Pure hashing — no key objects, no cache entries, no signature-registry
    registration.  The workload population model derives the addresses of
    a million prospective senders through this and materializes an actual
    :class:`Wallet` only for the (few) accounts that become active.
    """
    secret = sha256(b"privkey/" + name.encode())
    public = sha256(b"pubkey/" + secret)
    return sha256(public)[:20].hex()


@dataclass
class BaseAccount:
    """On-chain account state, as a plain value (queries and tests)."""

    address: str
    public_key: Optional[PublicKey]
    account_number: int
    sequence: int = 0


@dataclass
class Wallet:
    """Client-side key material for signing transactions."""

    name: str
    private_key: PrivateKey
    public_key: PublicKey

    @property
    def address(self) -> str:
        return self.public_key.address

    @classmethod
    def named(cls, name: str) -> "Wallet":
        priv, pub = new_keypair(name)
        return cls(name=name, private_key=priv, public_key=pub)


#: Column sentinel: this index has no account (the interner may allocate
#: indices for bank-only addresses such as module escrow accounts).
_NO_ACCOUNT = -1


class AccountView:
    """A write-through window onto one account's column slots.

    Behaves like :class:`BaseAccount` for readers, but ``sequence``
    assignments (the ante handler's ``account.sequence += 1``) land
    directly in the keeper's array column.
    """

    __slots__ = ("_keeper", "_idx", "address")

    def __init__(self, keeper: "AccountKeeper", idx: int, address: str) -> None:
        self._keeper = keeper
        self._idx = idx
        self.address = address

    @property
    def sequence(self) -> int:
        return self._keeper._sequences[self._idx]

    @sequence.setter
    def sequence(self, value: int) -> None:
        self._keeper._sequences[self._idx] = value

    @property
    def account_number(self) -> int:
        return self._keeper._numbers[self._idx]

    @property
    def public_key(self) -> Optional[PublicKey]:
        return self._keeper._keys.get(self._idx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccountView(address={self.address!r}, "
            f"number={self.account_number}, sequence={self.sequence})"
        )


class AccountKeeper:
    """The auth module's account store, on flat array columns.

    ``_sequences`` and ``_numbers`` are ``array('q')`` columns indexed by
    the shared :class:`AddressIndex`; ``_keys`` is a sparse side table
    holding public keys only for accounts created *with* key material
    (bulk-created workload accounts carry none — transaction validation
    uses the key the tx itself presents, exactly like the SDK, which
    stores the pubkey on first use).
    """

    def __init__(self, index: Optional[AddressIndex] = None) -> None:
        self.index = index if index is not None else AddressIndex()
        self._sequences = array("q")
        self._numbers = array("q")
        self._keys: dict[int, PublicKey] = {}
        self._next_number = 0
        self._count = 0

    def _grow(self, idx: int) -> None:
        short = idx + 1 - len(self._numbers)
        if short > 0:
            self._sequences.frombytes(bytes(8 * short))
            self._numbers.extend([_NO_ACCOUNT] * short)

    def _create_at(self, idx: int, address: str) -> None:
        self._grow(idx)
        if self._numbers[idx] != _NO_ACCOUNT:
            raise ChainError(f"account {address} already exists")
        self._numbers[idx] = self._next_number
        self._next_number += 1
        self._count += 1

    def create(self, public_key: PublicKey) -> AccountView:
        address = public_key.address
        idx = self.index.intern(address)
        self._create_at(idx, address)
        self._keys[idx] = public_key
        return AccountView(self, idx, address)

    def create_lazy(self, address: str) -> int:
        """Create an account with no stored key material; returns its index."""
        idx = self.index.intern(address)
        self._create_at(idx, address)
        return idx

    def create_many(self, addresses: Iterable[str]) -> None:
        """Bulk genesis: create lazy accounts in iteration order."""
        for address in addresses:
            self.create_lazy(address)

    def get(self, address: str) -> Optional[AccountView]:
        idx = self.index.lookup(address)
        if idx is None or idx >= len(self._numbers):
            return None
        if self._numbers[idx] == _NO_ACCOUNT:
            return None
        return AccountView(self, idx, address)

    def get_or_create(self, public_key: PublicKey) -> AccountView:
        account = self.get(public_key.address)
        if account is None:
            account = self.create(public_key)
        return account

    def require(self, address: str) -> AccountView:
        account = self.get(address)
        if account is None:
            raise ChainError(f"unknown account {address}", code=2)
        return account

    def increment_sequence(self, address: str) -> None:
        idx = self.index.lookup(address)
        if idx is None or idx >= len(self._numbers):
            raise ChainError(f"unknown account {address}", code=2)
        if self._numbers[idx] == _NO_ACCOUNT:
            raise ChainError(f"unknown account {address}", code=2)
        self._sequences[idx] += 1

    def sequence_of(self, address: str) -> int:
        """Sequence for ``address``; 0 for unknown accounts (query path)."""
        idx = self.index.lookup(address)
        if idx is None or idx >= len(self._sequences):
            return 0
        return self._sequences[idx]

    def __len__(self) -> int:
        return self._count
