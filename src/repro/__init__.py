"""repro — reproduction of "Analyzing the Performance of the
Inter-Blockchain Communication Protocol" (DSN 2023).

The package simulates the paper's entire testbed — Tendermint consensus,
Cosmos-SDK chains, the IBC protocol and a Hermes-style relayer — as a
deterministic discrete-event simulation, and implements the paper's
cross-chain performance evaluation framework on top of it.

Quickstart::

    from repro.framework import ExperimentConfig, ExperimentRunner

    config = ExperimentConfig(input_rate=100, measurement_blocks=20)
    report = ExperimentRunner(config).run()
    print(report.summary())
"""

from repro.calibration import Calibration, DEFAULT_CALIBRATION

__version__ = "1.0.0"

__all__ = ["Calibration", "DEFAULT_CALIBRATION", "__version__"]
