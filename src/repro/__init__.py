"""repro — reproduction of "Analyzing the Performance of the
Inter-Blockchain Communication Protocol" (DSN 2023).

The package simulates the paper's entire testbed — Tendermint consensus,
Cosmos-SDK chains, the IBC protocol and a Hermes-style relayer — as a
deterministic discrete-event simulation, and implements the paper's
cross-chain performance evaluation framework on top of it.

The stable top-level surface is ``__all__`` below: configure with
:class:`ExperimentConfig`, execute with :func:`run_experiment`, sweep a
parameter grid with :func:`sweep` (optionally in parallel: ``workers=N``
fans points across worker processes, ``cache_dir`` caches completed
points on disk).  Everything else is importable from the subpackages but
carries no stability promise.

Quickstart::

    import repro

    config = repro.ExperimentConfig(input_rate=100, measurement_blocks=20)
    report = repro.run_experiment(config)
    print(report.summary())

Or, from a shell (see ``python -m repro bench --help``)::

    python -m repro bench --points 4 --workers 2
"""

# calibration must load before framework: repro.framework.config imports
# `repro.calibration` through the partially-initialised `repro` package.
from repro.calibration import Calibration, DEFAULT_CALIBRATION

__version__ = "1.2.0"

from repro.errors import ReproError, SchemaError
from repro.faults import FaultSchedule
from repro.framework import (
    ExperimentConfig,
    ExperimentReport,
    FleetConfig,
    TopologySpec,
    TraceReport,
    run_experiment,
    sweep,
)

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "ExperimentConfig",
    "ExperimentReport",
    "FaultSchedule",
    "FleetConfig",
    "ReproError",
    "SchemaError",
    "TopologySpec",
    "TraceReport",
    "__version__",
    "run_experiment",
    "sweep",
]
