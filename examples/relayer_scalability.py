#!/usr/bin/env python3
"""Why adding a second relayer to a channel makes things WORSE.

An operator worried about relaying capacity might deploy a second Hermes
instance for the same channel.  The paper's Fig. 9 shows this *reduces*
throughput (by up to 33 %): relayers cannot coordinate, both deliver every
packet, and the loser's transactions fail on chain with ``packet messages
are redundant`` — wasting fees and polluting the event index every later
query must scan.

This example measures one vs two relayers at a moderately high input rate
and prints the redundancy errors and wasted fees.

Run:  python examples/relayer_scalability.py
"""

from repro.framework import ExperimentConfig

# The public entrypoint is repro.run_experiment(config); this example digs
# into post-run chain state (fee pools), so it drives the internal engine,
# which keeps the testbed around after the run.
from repro.framework.runner import _ExperimentEngine

RATE = 140  # requests per second, near the single-relayer peak
BLOCKS = 30


def run(num_relayers: int):
    config = ExperimentConfig(
        input_rate=RATE,
        measurement_blocks=BLOCKS,
        num_relayers=num_relayers,
        seed=13,
    )
    engine = _ExperimentEngine(config)
    report = engine.run()
    # Fees collected on the destination chain include those burned by the
    # losing relayer's failed (redundant) transactions.
    fee_pool_b = engine.testbed.chain_b.app.fee_pool.collected
    return report, fee_pool_b


def main() -> None:
    print(f"Input rate {RATE} transfers/s over {BLOCKS} blocks, 200 ms RTT\n")
    one, fees_one = run(1)
    two, fees_two = run(2)

    tfps_one = one.window.transfer_throughput_tfps
    tfps_two = two.window.transfer_throughput_tfps
    redundant = two.errors.get("packet_messages_redundant", 0)

    print(f"one relayer : {tfps_one:6.1f} TFPS completed")
    print(f"two relayers: {tfps_two:6.1f} TFPS completed "
          f"({(1 - tfps_two / tfps_one) * 100:.0f}% lower)")
    print(f"redundant-delivery errors with two relayers: {redundant} failed txs")
    print(f"fees burned on destination chain: {fees_one:,.0f} (1R) vs "
          f"{fees_two:,.0f} (2R)")
    print(
        "\nTakeaway (paper §IV-A): uncoordinated relayers duplicate work; the\n"
        "loser's transactions still pay fees and still get indexed, slowing\n"
        "every subsequent query of those blocks.  ICS-18 says nothing about\n"
        "relayer coordination — see examples in benchmarks/ for the\n"
        "multi-channel and coordinated-relayer alternatives."
    )


if __name__ == "__main__":
    main()
