#!/usr/bin/env python3
"""Multi-chain topologies: what hub routing costs and where the hub saturates.

Three questions a multi-chain operator asks, answered with the topology
layer (``TopologySpec``) and the packet-lifecycle tracer:

1. **Latency vs hop count** — a transfer routed A→hub→B is two chained
   ICS-20 transfers: each extra hop adds a full relay cycle (pull, build,
   submit, commit) to the end-to-end latency.  Line topologies of 2..4
   chains make the per-hop cost directly visible.
2. **Hub saturation** — in a hub-and-spoke fleet every route crosses the
   hub, so hub load grows with the number of spokes while each spoke only
   serves its own route.  The hub's send/receive totals against a spoke's
   show the crossover.
3. **Per-channel fairness** — the per-channel breakdown in the report
   shows whether the hub serves its spokes evenly.

Run:  python examples/multihop_topologies.py
"""

from repro.framework import ExperimentConfig, TopologySpec, run_experiment
from repro.framework.metrics import assemble_route_traces

RATE = 5  # transfers/s per route — small enough to stay unsaturated
BLOCKS = 3
SEED = 13


def run(topology: TopologySpec):
    config = ExperimentConfig(
        input_rate=RATE,
        measurement_blocks=BLOCKS,
        seed=SEED,
        drain_seconds=60.0,
        topology=topology,
        tracing=True,
    )
    return run_experiment(config)


def mean_latency(report) -> float:
    """Mean submit→final-delivery latency over complete end-to-end routes."""
    routes = [r for r in assemble_route_traces(report.tracer) if r.complete]
    return sum(r.delivery_seconds for r in routes) / len(routes)


def bar(value: float, scale: float, width: int = 40) -> str:
    return "#" * max(1, int(width * value / scale))


def main() -> None:
    print(f"{RATE} transfers/s per route, {BLOCKS} measured blocks\n")

    # -- 1: latency vs hop count ------------------------------------------
    print("End-to-end latency vs hop count (line topologies)")
    points = []
    for chains in (2, 3, 4):
        report = run(TopologySpec.line(chains))
        points.append((chains - 1, mean_latency(report)))
    scale = max(latency for _h, latency in points)
    for hops, latency in points:
        print(f"  {hops} hop(s): {latency:6.1f} s  {bar(latency, scale)}")
    per_hop = (points[-1][1] - points[0][1]) / (points[-1][0] - points[0][0])
    print(f"  marginal cost per extra hop: ~{per_hop:.1f} s\n")

    # -- 2: hub saturation ------------------------------------------------
    print("Hub-and-spoke: hub load vs spoke load as the fleet grows")
    print(f"  {'spokes':>6} {'hub sends':>10} {'spoke sends':>12} {'ratio':>6}")
    for spokes in (2, 3, 4):
        report = run(TopologySpec.hub_and_spoke(spokes))
        rows = report.window.channels
        hub_sends = sum(r["sends"] for r in rows if r["chain"] == "ibc-0")
        spoke_sends = max(
            (r["sends"] for r in rows if r["chain"] != "ibc-0"), default=0
        )
        ratio = hub_sends / spoke_sends if spoke_sends else float("inf")
        print(
            f"  {spokes:>6} {hub_sends:>10} {spoke_sends:>12} {ratio:>6.1f}"
        )
    print(
        "  every route forwards through the hub, so hub sends grow with\n"
        "  the spoke count while each spoke's stay flat — the hub's serial\n"
        "  RPC endpoint is the first resource to saturate.\n"
    )

    # -- 3: per-channel fairness -----------------------------------------
    print("Per-channel fairness (4-spoke hub)")
    report = run(TopologySpec.hub_and_spoke(4))
    print(f"  {'chain':>8} {'channel':>10} {'sends':>6} {'recvs':>6} {'acks':>6}")
    for row in report.window.channels:
        print(
            f"  {row['chain']:>8} {row['channel']:>10} "
            f"{row['sends']:>6} {row['receives']:>6} {row['acks']:>6}"
        )
    print(
        "\nTakeaway: hop count prices latency (one relay cycle per hop) and\n"
        "the hub prices throughput (all routes share its serial RPC): size\n"
        "hub capacity to the *sum* of spoke rates, not to any single route."
    )


if __name__ == "__main__":
    main()
