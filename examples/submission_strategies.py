#!/usr/bin/env python3
"""Choosing a submission strategy for a large batch of cross-chain payouts.

Scenario from the paper's Fig. 13: an operator (say, an exchange draining a
withdrawal queue) must move 2 000 tokens across chains and can either dump
every transfer into one block or spread the submissions over several
blocks.  The paper shows a U-shaped trade-off: batching everything at once
maximises the serial-RPC data-pull penalty (quadratic in block occupancy),
while spreading too thin makes the submission span itself dominate.

This example sweeps the strategy space and prints the measured completion
latency plus the recommendation.

Run:  python examples/submission_strategies.py
"""

from repro.framework import ExperimentConfig, run_experiment

TOTAL = 2000
STRATEGIES = [1, 2, 4, 8, 16, 32]


def main() -> None:
    print(f"Moving {TOTAL} transfers across chains; trying {STRATEGIES} block spreads\n")
    results = {}
    for blocks in STRATEGIES:
        config = ExperimentConfig(
            total_transfers=TOTAL,
            submission_blocks=blocks,
            measurement_blocks=400,
            run_to_completion=True,
            seed=11,
        )
        report = run_experiment(config)
        results[blocks] = report.completion_latency
        print(
            f"  {blocks:>2} block(s): all {TOTAL} transfers completed in "
            f"{report.completion_latency:7.1f}s "
            f"(pulls {report.timeline.data_pull_fraction * 100:4.1f}% of relayer time)"
        )

    best = min(results, key=results.get)
    worst = max(results, key=results.get)
    saving = 1 - results[best] / results[1]
    print(
        f"\nRecommendation: spread submission over {best} blocks — "
        f"{saving * 100:.0f}% faster than a single-block dump "
        f"(paper reports up to 70% for 5 000 transfers)."
    )
    print(
        f"Beware over-spreading: {worst} blocks took {results[worst]:.0f}s "
        f"(the paper's 64-block strategy was 320% slower than the optimum)."
    )


if __name__ == "__main__":
    main()
