#!/usr/bin/env python3
"""The cost of collecting experiment data (the paper's §V challenge).

The paper's tool must retrieve per-block transaction data to build its
metrics, and §V documents how expensive those queries are: a block with
2 000 transfer messages returns ~330 k lines and takes ~2.9 s; the same
count of recv messages ~580 k lines and ~5.7 s.  This example runs a
workload, then drives the framework's Cross-chain Data Connector over both
chains' RPC interfaces and reports per-block query costs — showing how the
analysis itself competes with the systems being measured.

Run:  python examples/analysis_tool_costs.py
"""

from repro.framework import ExperimentConfig
from repro.framework.connectors import CrossChainDataConnector

# The public entrypoint is repro.run_experiment(config); this example keeps
# driving the simulation after the run, so it uses the internal engine,
# which exposes the live testbed.
from repro.framework.runner import _ExperimentEngine


def main() -> None:
    config = ExperimentConfig(
        input_rate=400,  # 2 000 transfers per block, the paper's example size
        measurement_blocks=6,
        seed=17,
        drain_seconds=60.0,
    )
    engine = _ExperimentEngine(config)
    report = engine.run()
    testbed = engine.testbed
    env = testbed.env

    connector = CrossChainDataConnector(
        env,
        nodes={
            "ibc-0": testbed.chain_a.node(testbed.cli_host),
            "ibc-1": testbed.chain_b.node(testbed.cli_host),
        },
        host=testbed.cli_host,
    )

    heights_a = list(
        range(report.window.start_height_a + 1, report.window.end_height_a + 1)
    )
    heights_b = list(range(1, testbed.chain_b.block_store.latest_height + 1))

    collected = {}

    def collect():
        collected["a"] = yield from connector.collect_blocks("ibc-0", heights_a)
        collected["b"] = yield from connector.collect_blocks("ibc-1", heights_b)

    proc = env.process(collect(), name="data-connector")
    while not proc.triggered:
        env.step()
    if not proc.ok:
        raise proc.value

    print("Per-block data collection costs (simulated seconds per query):\n")
    for chain_id, blocks in (("ibc-0 (source)", collected["a"]),
                             ("ibc-1 (destination)", collected["b"])):
        busy = [b for b in blocks if b.message_count > 0]
        if not busy:
            continue
        print(f"  {chain_id}:")
        for block in busy[:8]:
            print(
                f"    height {block.height:>3}: {block.message_count:>6} msgs, "
                f"{block.event_bytes / 1e6:5.2f} MB of events -> "
                f"query took {block.query_seconds * 1000:7.1f} ms"
            )
        total = sum(b.query_seconds for b in blocks)
        print(f"    total collection time for {len(blocks)} blocks: {total:.2f}s\n")

    print(
        "Note how destination blocks (recv + ack events, ~1.75x larger per\n"
        "message) cost more to query than source blocks — the same asymmetry\n"
        "behind the paper's 110 s vs 207 s data-pull split in Fig. 12."
    )


if __name__ == "__main__":
    main()
