#!/usr/bin/env python3
"""Ops runbook: diagnosing and recovering stuck IBC transfers.

Reproduces the paper's §V "WebSocket space limit" incident at a small
scale: a block with too many IBC events overflows the node's WebSocket
frame limit, Hermes logs ``Failed to collect events``, and — with packet
clearing disabled — every packet in that block is stranded: committed on
the source chain, never received, never timed out.

The runbook then shows the two recovery paths an operator has:
  1. enable packet clearing (``clear_interval > 0``), or
  2. trigger a one-shot clear scan (``hermes clear packets``).

Run:  python examples/websocket_failure_runbook.py
"""

from repro import calibration as cal
from repro.framework import ExperimentConfig, Testbed, WorkloadDriver

#: Shrunken frame limit so a 1 500-transfer block overflows quickly.
FRAME_LIMIT_BYTES = 300_000


def main() -> None:
    config = ExperimentConfig(
        total_transfers=1500,
        submission_blocks=1,
        measurement_blocks=10_000,
        timeout_blocks=100,
        clear_interval=0,  # the paper's pathological configuration
        seed=21,
        calibration=cal.DEFAULT_CALIBRATION.with_overrides(
            websocket_max_frame_bytes=FRAME_LIMIT_BYTES
        ),
    )
    testbed = Testbed(config)
    env = testbed.env

    def scenario():
        path = yield from testbed.bootstrap()
        testbed.start_relayers()
        relayer = testbed.relayers[0]

        print("== Incident: submitting 1 500 transfers in one block ...")
        driver = WorkloadDriver(testbed)
        driver.start()
        yield driver.finished
        yield env.timeout(60.0)

        pending = testbed.chain_a.app.ibc.pending_commitments(
            "transfer", path.a.channel_id
        )
        ws_errors = relayer.log.count("failed_to_collect_events")
        print(f"   t={env.now:7.1f}s  'Failed to collect events' x{ws_errors}")
        print(f"   t={env.now:7.1f}s  {len(pending)} packets STUCK "
              f"(committed on source, unseen by the relayer)")

        print("== Waiting 120 s: do they recover on their own? ...")
        yield env.timeout(120.0)
        pending = testbed.chain_a.app.ibc.pending_commitments(
            "transfer", path.a.channel_id
        )
        print(f"   t={env.now:7.1f}s  still stuck: {len(pending)} "
              f"(clear_interval=0 means nothing ever re-scans)")

        print("== Recovery: packet clear scans (hermes clear packets) ...")
        worker = relayer.worker_ab
        for attempt in range(1, 6):
            clear = env.process(worker.clear_once(), name="manual-clear")
            yield clear
            yield env.timeout(60.0)  # let the submitted txs commit
            pending = testbed.chain_a.app.ibc.pending_commitments(
                "transfer", path.a.channel_id
            )
            print(
                f"   t={env.now:7.1f}s  clear pass {attempt}: "
                f"{len(pending)} packets still pending"
            )
            if not pending:
                break
        else:
            raise RuntimeError("clearing did not recover the packets")
        print(f"   t={env.now:7.1f}s  all packets completed after clearing")
        print(
            "   (two passes were needed: the recv leg's ack events ALSO\n"
            "    overflowed the frame limit, so the ack leg required its own\n"
            "    clear scan — exactly why Hermes clears both directions)"
        )
        print(
            "\nRunbook summary: set clear_interval > 0 in production, and "
            "watch for\n'Failed to collect events' — it means an entire "
            "block's packets need manual clearing."
        )

    main_proc = env.process(scenario(), name="runbook")
    while not main_proc.triggered:
        env.step()
    if not main_proc.ok:
        raise main_proc.value


if __name__ == "__main__":
    main()
