#!/usr/bin/env python3
"""Quickstart: deploy two chains, relay one cross-chain transfer, inspect it.

This walks the whole stack once: the Setup module deploys two simulated
Gaia chains on five machines (200 ms RTT) and opens an IBC transfer
channel through a Hermes-style relayer; we then submit a single
100-message transfer transaction through the CLI and watch the packet
life cycle (transfer -> receive -> acknowledge) complete.

Run:  python examples/quickstart.py
"""

from repro.framework import ExperimentConfig, Testbed, WorkloadDriver
from repro.framework.connectors import CrossChainEventConnector
from repro.framework.processor import CrossChainEventProcessor


def main() -> None:
    config = ExperimentConfig(
        input_rate=20,  # one 100-msg transaction per block
        measurement_blocks=6,
        seed=7,
    )
    testbed = Testbed(config)
    env = testbed.env

    def scenario():
        print("== Setup: starting chains and opening the IBC channel ...")
        path = yield from testbed.bootstrap()
        print(
            f"   t={env.now:6.1f}s  channel open: "
            f"{path.a.chain_id}/{path.a.channel_id} <-> "
            f"{path.b.chain_id}/{path.b.channel_id}"
        )
        testbed.start_relayers()

        print("== Benchmark: submitting 100 transfers in one transaction ...")
        driver = WorkloadDriver(testbed)
        start = env.now
        config_total = 100
        driver.config.total_transfers = config_total
        driver.config.submission_blocks = 1
        driver.start()
        yield driver.finished

        # Wait until every packet is acknowledged on the source chain.
        while testbed.chain_a.app.ibc.pending_commitments(
            "transfer", path.a.channel_id
        ):
            yield env.timeout(1.0)
        print(f"   t={env.now:6.1f}s  all {config_total} transfers completed "
              f"({env.now - start:.1f}s end to end)")
        return start

    main_proc = env.process(scenario(), name="quickstart")
    while not main_proc.triggered:
        env.step()
    if not main_proc.ok:
        raise main_proc.value
    start_time = main_proc.value

    print("\n== Analysis: the 13-step timeline the paper's Fig. 12 uses ==")
    connector = CrossChainEventConnector()
    connector.attach(testbed.relayers[0].log)
    processor = CrossChainEventProcessor(connector)
    timelines = processor.step_timelines(start_time)
    for step in sorted(timelines):
        timeline = timelines[step]
        if timeline.points:
            print(
                f"  step {step:>2}  {timeline.name:<22} "
                f"done at t+{timeline.finished_at - start_time:6.1f}s "
                f"({timeline.total} msgs)"
            )

    voucher_balances = testbed.chain_b.app.bank.balances(
        testbed.receiver.address
    )
    voucher = next(d for d in voucher_balances if d.startswith("ibc/"))
    print(f"\nReceiver now holds {voucher_balances[voucher]} {voucher[:20]}... on chain B")
    print("(a hashed ICS-20 denom trace: transfer/channel-0/uatom)")


if __name__ == "__main__":
    main()
